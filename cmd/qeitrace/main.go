// Command qeitrace records the simulator's unified event timeline for a
// short run and writes it as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto). Query spans land on QST instance
// tracks (one row per slot — the staggered spans show the out-of-order,
// pipelined CFA execution of Sec. IV-B), alongside cache accesses, page
// walks, NoC transfers, and CHA remote compares on their own tracks.
//
// -spans restricts the output to the legacy query-span-only view.
//
// Usage:
//
//	qeitrace [-queries 64] [-scheme core|cha-tlb|...] [-table skiplist|cuckoo|...] [-o trace.json] [-spans]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qei"
)

func main() {
	nFlag := flag.Int("queries", 64, "queries to trace")
	schemeFlag := flag.String("scheme", "core", "integration scheme")
	tableFlag := flag.String("table", "skiplist", "structure to trace: skiplist, cuckoo, hashtable, bst, btree, linkedlist")
	outFlag := flag.String("o", "", "output file (default stdout)")
	spansFlag := flag.Bool("spans", false, "export only the legacy query-span view, not the unified timeline")
	flag.Parse()

	var sch qei.Scheme
	switch *schemeFlag {
	case "core":
		sch = qei.CoreIntegrated
	case "cha-tlb":
		sch = qei.CHATLB
	case "cha-notlb":
		sch = qei.CHANoTLB
	case "device-direct":
		sch = qei.DeviceDirect
	case "device-indirect":
		sch = qei.DeviceIndirect
	default:
		fmt.Fprintf(os.Stderr, "qeitrace: unknown scheme %q\n", *schemeFlag)
		os.Exit(2)
	}

	kind, err := qei.ParseStructKind(*tableFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(2)
	}

	sysOpts := []qei.Option{qei.WithQuerySpans()}
	if !*spansFlag {
		// Unified timeline: ExportTrace then renders every component's
		// events, not just the accelerator's query spans.
		sysOpts = append(sysOpts, qei.WithTimeline())
	}
	sys := qei.NewSystem(sch, sysOpts...)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 2048)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = make([]byte, 32)
		rng.Read(keys[i])
		vals[i] = uint64(i) + 1
	}
	if kind == qei.KindTrie || kind == qei.KindCustom {
		fmt.Fprintf(os.Stderr, "qeitrace: cannot trace a %s table\n", kind)
		os.Exit(2)
	}
	table, err := sys.Build(kind, keys, vals)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(1)
	}

	// QueryBatch keeps a full QST's worth of queries in flight, so the
	// viewer shows the QST-deep overlap.
	probes := make([][]byte, *nFlag)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}
	if _, err := sys.QueryBatch(table, probes); err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(1)
	}

	doc := sys.ExportTrace()
	if *outFlag == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*outFlag, []byte(doc), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "qeitrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote trace of %d queries to %s\n", *nFlag, *outFlag)
}
