package main

import (
	"encoding/json"
	"fmt"
	"os"

	"qei"
	"qei/internal/stream"
)

// runStreamMode is the -stream entry point: one mutable table under a
// seeded mixed read-write stream, lookups held in flight across
// mutations, every op verified against the host model. The serving
// flags are reinterpreted where they overlap: -requests is the op
// count, -keys the initial population, -keyzipf the key skew, -slots
// the in-flight lookup window (0 = 8). -record/-replay use the stream
// trace format and replay byte-identically, digest included; the trace
// pins the op stream, so a replay must pass the same -kind, -scheme and
// -machine as the recording run (as serve-mode replay does -backend).
func runStreamMode(cfg qei.ServingConfig, record, replay string, jsonOut bool) {
	window := cfg.SlotsPerTenant
	if window <= 0 {
		window = 8
	}
	scfg := qei.StreamConfig{
		Scheme:         cfg.Scheme,
		Kind:           cfg.Kind,
		InitialKeys:    cfg.KeysPerTenant,
		Ops:            cfg.Requests,
		KeyLen:         cfg.KeyLen,
		WriteFraction:  cfg.WriteFraction,
		DeleteFraction: cfg.DeleteFraction,
		KeySkew:        cfg.KeySkew,
		Window:         window,
		Seed:           cfg.Seed,
		Machine:        cfg.Machine,
	}

	var wl *stream.Workload
	switch {
	case replay != "":
		if record != "" {
			fail("-record and -replay are mutually exclusive")
		}
		f, err := os.Open(replay)
		if err != nil {
			fail("%v", err)
		}
		wl, err = stream.ReadTrace(f)
		f.Close()
		if err != nil {
			fail("replay %s: %v", replay, err)
		}
		// The trace's embedded config reproduces the exact run that
		// recorded it, machine seed included.
		scfg.Seed = wl.Cfg.Seed
	default:
		gen := stream.Config{
			InitialKeys:    scfg.InitialKeys,
			Ops:            scfg.Ops,
			KeyLen:         scfg.KeyLen,
			WriteFraction:  scfg.WriteFraction,
			DeleteFraction: scfg.DeleteFraction,
			KeySkew:        scfg.KeySkew,
			Window:         scfg.Window,
			Seed:           scfg.Seed,
		}
		var err error
		wl, err = stream.Generate(gen)
		if err != nil {
			fail("%v", err)
		}
		if record != "" {
			f, err := os.Create(record)
			if err != nil {
				fail("%v", err)
			}
			if err := stream.WriteTrace(f, wl); err != nil {
				f.Close()
				fail("record %s: %v", record, err)
			}
			if err := f.Close(); err != nil {
				fail("record %s: %v", record, err)
			}
			fmt.Fprintf(os.Stderr, "qeiserve: recorded %d stream ops to %s\n", len(wl.Ops), record)
		}
	}

	rep, err := qei.ReplayStream(scfg, wl)
	if err != nil {
		fail("stream: %v", err)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		doc := struct {
			Experiment string            `json:"experiment"`
			Scheme     string            `json:"scheme"`
			Kind       string            `json:"kind"`
			Gen        stream.Config     `json:"gen"`
			Report     *qei.StreamReport `json:"report"`
			Digest     string            `json:"digest"`
		}{"stream", scfg.Scheme.String(), scfg.Kind.String(), wl.Cfg, rep,
			fmt.Sprintf("%016x", rep.Digest)}
		if err := enc.Encode(doc); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("stream kind=%s scheme=%s window=%d seed=%d\n",
			scfg.Kind, scfg.Scheme, wl.Cfg.Window, wl.Cfg.Seed)
		// Counter lines mirror the stream/ metric names the engine
		// registers, so scripts can grep either surface.
		fmt.Printf("stream/ops_total %d\n", rep.Ops)
		fmt.Printf("stream/gets %d\n", rep.Gets)
		fmt.Printf("stream/puts %d\n", rep.Puts)
		fmt.Printf("stream/dels %d\n", rep.Dels)
		fmt.Printf("stream/hits %d\n", rep.Hits)
		fmt.Printf("stream/misses %d\n", rep.Misses)
		fmt.Printf("stream/mismatches %d\n", rep.Mismatches)
		fmt.Printf("stream/faulted %d\n", rep.Faulted)
		fmt.Printf("mut    inserts=%d deletes=%d rehashes=%d splits=%d merges=%d rebuilds=%d\n",
			rep.Mut.Inserts, rep.Mut.Deletes, rep.Mut.Rehashes, rep.Mut.Splits,
			rep.Mut.Merges, rep.Mut.Rebuilds)
		fmt.Printf("epoch  retired=%d reclaimed=%d reused=%d violations=%d\n",
			rep.Epoch.Retired, rep.Epoch.Reclaimed, rep.Epoch.Reused, rep.Epoch.Violations)
		fmt.Printf("lat    p50=%d p99=%d max_outstanding=%d\n", rep.P50, rep.P99, rep.MaxOutstanding)
		fmt.Printf("digest %016x\n", rep.Digest)
	}
	if rep.Mismatches != 0 || rep.Epoch.Violations != 0 {
		fail("stream inconsistent: %d mismatches, %d read-after-retire violations",
			rep.Mismatches, rep.Epoch.Violations)
	}
}
