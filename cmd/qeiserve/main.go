// Command qeiserve runs the multi-tenant serving frontend: a seeded
// open-loop request stream over N Zipf-skewed tenants, served on a
// simulated machine by either the QEI accelerator or the software
// baseline walker behind the same Backend interface, with per-tenant
// QST admission and latency-percentile/SLO accounting.
//
// Usage:
//
//	qeiserve [-backend qei|baseline|both] [-tenants N] [-requests N]
//	         [-keys N] [-keylen N] [-kind cuckoo|bst|...] [-zipf S]
//	         [-keyzipf S] [-gap CYCLES] [-slo CYCLES] [-slots N]
//	         [-writes F] [-delfrac F] [-writecost CYCLES]
//	         [-faults SPEC] [-resilient] [-deadline CYCLES] [-retries N]
//	         [-budget CYCLES] [-timeline FILE] [-batchmode [-batchadmit N]]
//	         [-seed N] [-scheme core|cha-tlb|...] [-machine preset|file.json]
//	         [-genparallel N] [-record FILE | -replay FILE] [-json]
//	qeiserve -stream [-kind btree] [-writes 0.3] [-requests N] [-keys N]
//	         [-record FILE | -replay FILE] [...]
//
// -record writes the generated stream as a JSONL trace before serving
// it; -replay serves a previously recorded trace instead of generating
// one (its embedded generation config reproduces the exact tables, so
// the replayed run is byte-identical to the run that recorded it).
// -backend both serves the identical stream through each backend in
// turn, one fresh machine per backend. -json emits the full per-tenant
// reports (p50/p99/p999, SLO violations, throttle counts) as a single
// machine-readable document.
//
// -writes makes that fraction of each tenant's requests software
// mutations (of which -delfrac are deletes, the rest upserts): tenant
// tables build updatable, mutations apply between in-flight accelerated
// lookups under epoch-based reclamation, and per-tenant write latency is
// reported alongside the read percentiles.
//
// -faults arms the replayable chaos schedule ("seed:kind=rate,...", the
// qeisim format) on the serving machine; -budget adds the per-query
// cycle watchdog. Without -resilient, faults ride in each report's
// per-tenant fault counts. With -resilient, the serving resilience
// layer is on: requests past -deadline cycles (default 4x the SLO) are
// shed, faulting queries retry up to -retries times with backoff and
// then fail over to the software walker, and a circuit breaker routes
// around the accelerator while its fault rate is high. A greppable
// "resilience ..." summary line follows each text report, and the run
// exits non-zero on any read-after-retire epoch violation. -timeline
// writes the unified cycle-stamped Chrome trace (including the serving
// track's shed/failover/breaker events) after each run.
//
// -batchmode turns on batched admission (qei backend only): lookups
// buffer per tenant and flush through the level-wise batch engine in
// groups of up to -batchadmit keys; a tenant's buffer also flushes
// before its writes and at end of stream. A greppable "batch ..."
// counter line (flush counts plus the engine's amortization counters)
// follows each text report.
//
// -stream switches to the single-table streaming consistency harness
// (internal/stream): one mutable structure under a seeded mixed
// read-write stream with a window of accelerated lookups held in flight
// across mutations, verified op-for-op against a host model. -record /
// -replay use the stream trace format; replays are byte-identical,
// digest included. The run fails (exit 1) on any model mismatch or
// read-after-retire violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"qei"
	"qei/internal/serve"
)

func fail(format string, v ...any) {
	fmt.Fprintf(os.Stderr, "qeiserve: "+format+"\n", v...)
	os.Exit(1)
}

func parseScheme(name string) (qei.Scheme, bool) {
	switch name {
	case "core":
		return qei.CoreIntegrated, true
	case "cha-tlb":
		return qei.CHATLB, true
	case "cha-notlb":
		return qei.CHANoTLB, true
	case "device-direct":
		return qei.DeviceDirect, true
	case "device-indirect":
		return qei.DeviceIndirect, true
	}
	return 0, false
}

// output is the -json document: the shared stream description plus one
// report per backend that served it.
type output struct {
	Experiment string          `json:"experiment"`
	Scheme     string          `json:"scheme"`
	Gen        serve.GenConfig `json:"gen"`
	Reports    []*serve.Report `json:"reports"`
}

func main() {
	def := qei.DefaultServingConfig()
	backendFlag := flag.String("backend", "qei", `backend: "qei", "baseline", or "both"`)
	tenantsFlag := flag.Int("tenants", def.Tenants, "tenant count")
	requestsFlag := flag.Int("requests", def.Requests, "total request count across tenants")
	keysFlag := flag.Int("keys", def.KeysPerTenant, "keys per tenant table")
	keyLenFlag := flag.Int("keylen", def.KeyLen, "key length in bytes (>= 8)")
	kindFlag := flag.String("kind", def.Kind.String(), "tenant table structure kind")
	zipfFlag := flag.Float64("zipf", def.TenantSkew, "Zipf skew of tenant popularity")
	keyZipfFlag := flag.Float64("keyzipf", def.KeySkew, "Zipf skew of per-tenant key popularity")
	gapFlag := flag.Uint64("gap", def.MeanGap, "mean inter-arrival gap in cycles (open loop)")
	sloFlag := flag.Uint64("slo", def.SLO, "per-request latency SLO in cycles; 0 disables")
	slotsFlag := flag.Int("slots", 0, "in-flight QST slots per tenant; 0 = capacity/tenants (stream mode: lookup window, 0 = 8)")
	writesFlag := flag.Float64("writes", 0, "fraction of requests that are software mutations (0 = read-only)")
	delFracFlag := flag.Float64("delfrac", 0.4, "fraction of mutations that are deletes (rest are upserts)")
	writeCostFlag := flag.Uint64("writecost", 0, "simulated cycles charged per mutation; 0 = default")
	faultsFlag := flag.String("faults", "", `chaos schedule "seed:kind=rate,..." injected on the serving machine; empty = clean`)
	resilientFlag := flag.Bool("resilient", false, "enable deadlines/shedding, retry, software failover, and the circuit breaker")
	deadlineFlag := flag.Uint64("deadline", 0, "per-request completion budget in cycles before shedding; 0 = 4x the SLO")
	retriesFlag := flag.Int("retries", 0, "primary-backend retries before failover; 0 = default, negative = none")
	budgetFlag := flag.Uint64("budget", 0, "per-query cycle-budget watchdog; 0 = off")
	timelineFlag := flag.String("timeline", "", "write the unified Chrome trace-event timeline to this file")
	batchModeFlag := flag.Bool("batchmode", false, "batched admission: buffer lookups per tenant and flush them through the level-wise batch engine (qei backend only)")
	batchAdmitFlag := flag.Int("batchadmit", 16, "lookups buffered per tenant before a batch flush (with -batchmode)")
	streamFlag := flag.Bool("stream", false, "run the streaming consistency harness instead of the serving frontend")
	seedFlag := flag.Int64("seed", def.Seed, "stream and machine seed")
	schemeFlag := flag.String("scheme", "core", "integration scheme: core, cha-tlb, cha-notlb, device-direct, device-indirect")
	machineFlag := flag.String("machine", "", "machine description: a preset name (default, core, cha-tlb, ...) or a JSON file; empty = the Tab. II default")
	genParFlag := flag.Int("genparallel", 0, "workers for stream generation; 0 = GOMAXPROCS (output identical at any value)")
	recordFlag := flag.String("record", "", "write the generated stream to this JSONL trace file before serving")
	replayFlag := flag.String("replay", "", "serve a recorded JSONL trace instead of generating a stream")
	jsonFlag := flag.Bool("json", false, "emit the per-tenant reports as machine-readable JSON")
	flag.Parse()

	scheme, ok := parseScheme(*schemeFlag)
	if !ok {
		fail("unknown scheme %q", *schemeFlag)
	}
	kind, err := qei.ParseStructKind(*kindFlag)
	if err != nil {
		fail("%v", err)
	}
	cfg := qei.ServingConfig{
		Scheme:         scheme,
		Tenants:        *tenantsFlag,
		Requests:       *requestsFlag,
		KeysPerTenant:  *keysFlag,
		KeyLen:         *keyLenFlag,
		Kind:           kind,
		TenantSkew:     *zipfFlag,
		KeySkew:        *keyZipfFlag,
		MeanGap:        *gapFlag,
		Seed:           *seedFlag,
		WriteFraction:  *writesFlag,
		DeleteFraction: *delFracFlag,
		WriteCost:      *writeCostFlag,
		SLO:            *sloFlag,
		SlotsPerTenant: *slotsFlag,
		GenWorkers:     *genParFlag,
		Resilient:      *resilientFlag,
		Deadline:       *deadlineFlag,
		MaxRetries:     *retriesFlag,
		QueryBudget:    *budgetFlag,
		Timeline:       *timelineFlag,
	}
	if *faultsFlag != "" {
		spec, err := qei.ParseFaultSpec(*faultsFlag)
		if err != nil {
			fail("-faults: %v", err)
		}
		cfg.Faults = &spec
	}
	if *machineFlag != "" {
		spec, err := qei.LoadMachineSpec(*machineFlag)
		if err != nil {
			// The error wraps qei.ErrBadConfig and names the offending
			// preset, file, or field.
			fail("-machine: %v", err)
		}
		cfg.Machine = &spec
	}

	if *batchModeFlag {
		if *backendFlag != "qei" {
			fail("-batchmode requires the qei backend (the software walker has no batch path)")
		}
		if *batchAdmitFlag < 2 {
			fail("-batchadmit must be >= 2, got %d", *batchAdmitFlag)
		}
		cfg.BatchAdmit = *batchAdmitFlag
	}

	if *streamFlag {
		runStreamMode(cfg, *recordFlag, *replayFlag, *jsonFlag)
		return
	}

	var backends []string
	switch *backendFlag {
	case "both":
		backends = qei.ServingBackends()
	case "qei", "baseline":
		backends = []string{*backendFlag}
	default:
		fail("unknown backend %q (want qei, baseline, or both)", *backendFlag)
	}

	// One stream, whether generated or replayed; every backend serves
	// the identical request sequence on its own fresh machine.
	var gen serve.GenConfig
	var reqs []serve.Request
	switch {
	case *replayFlag != "":
		if *recordFlag != "" {
			fail("-record and -replay are mutually exclusive")
		}
		f, err := os.Open(*replayFlag)
		if err != nil {
			fail("%v", err)
		}
		gen, reqs, err = serve.ReadTrace(f)
		f.Close()
		if err != nil {
			fail("replay %s: %v", *replayFlag, err)
		}
		cfg.Seed = gen.Seed
	default:
		gen = cfg.GenConfig()
		reqs, err = serve.GenerateParallel(gen, cfg.GenWorkers)
		if err != nil {
			fail("%v", err)
		}
		if *recordFlag != "" {
			f, err := os.Create(*recordFlag)
			if err != nil {
				fail("%v", err)
			}
			if err := serve.WriteTrace(f, gen, reqs); err != nil {
				f.Close()
				fail("record %s: %v", *recordFlag, err)
			}
			if err := f.Close(); err != nil {
				fail("record %s: %v", *recordFlag, err)
			}
			fmt.Fprintf(os.Stderr, "qeiserve: recorded %d requests to %s\n", len(reqs), *recordFlag)
		}
	}

	out := output{Experiment: "serving", Scheme: scheme.String(), Gen: gen}
	for _, name := range backends {
		c := cfg
		c.Backend = name
		rep, err := qei.ReplayServing(c, gen, reqs)
		if err != nil {
			fail("%s: %v", name, err)
		}
		out.Reports = append(out.Reports, rep)
	}

	// Read-after-retire is a consistency-contract breach, never "degraded
	// but correct" — the run fails loudly whatever the output mode.
	var violations uint64
	for _, rep := range out.Reports {
		violations += rep.EpochViolations
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
		if violations > 0 {
			fail("%d read-after-retire epoch violations", violations)
		}
		return
	}
	for _, rep := range out.Reports {
		fmt.Printf("backend %s  scheme %s  requests %d  slots/tenant %d  capacity %d  makespan %d\n",
			rep.Backend, out.Scheme, rep.Requests, rep.SlotsPerTenant, rep.Capacity, rep.MakespanCycles)
		fmt.Printf("%8s %9s %9s %8s %9s %9s %9s %9s %9s\n",
			"tenant", "requests", "throttled", "slo_viol", "mean", "p50", "p99", "p999", "max")
		rows := append(append([]serve.TenantStats(nil), rep.Tenants...), rep.Total)
		for _, ts := range rows {
			tenant := "all"
			if ts.Tenant >= 0 {
				tenant = fmt.Sprintf("%d", ts.Tenant)
			}
			fmt.Printf("%8s %9d %9d %8d %9.0f %9d %9d %9d %9d\n",
				tenant, ts.Requests, ts.Throttled, ts.SLOViolations,
				ts.MeanLatency, ts.P50, ts.P99, ts.P999, ts.MaxLatency)
		}
		if rep.Total.Writes > 0 {
			fmt.Printf("%8s %9s %9s %9s\n", "", "writes", "write_p50", "write_p99")
			for _, ts := range rows {
				tenant := "all"
				if ts.Tenant >= 0 {
					tenant = fmt.Sprintf("%d", ts.Tenant)
				}
				fmt.Printf("%8s %9d %9d %9d\n", tenant, ts.Writes, ts.WriteP50, ts.WriteP99)
			}
		}
		if rep.Batch != nil {
			fmt.Printf("batch admit %d batch/batches %d batch/batched_reads %d batch/levels %d batch/translations_saved %d batch/coalesced_probes %d batch/deferred %d\n",
				cfg.BatchAdmit, rep.Batch.Batches, rep.Batch.BatchedReads,
				rep.Batch.Levels, rep.Batch.TranslationsSaved,
				rep.Batch.CoalescedProbes, rep.Batch.Deferred)
		}
		if *resilientFlag || cfg.Faults != nil {
			state := "off"
			var trips uint64
			if rep.Breaker != nil {
				state = rep.Breaker.State
				trips = rep.Breaker.Trips
			}
			fmt.Printf("resilience shed %d retries %d failover %d breaker_trips %d breaker_state %s faults_injected %d epoch_violations %d\n",
				rep.Total.Shed, rep.Total.Retries, rep.Total.FailedOver,
				trips, state, rep.FaultsInjected, rep.EpochViolations)
		}
		fmt.Println()
	}
	if violations > 0 {
		fail("%d read-after-retire epoch violations", violations)
	}
}
