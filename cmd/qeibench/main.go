// Command qeibench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Independent experiment points fan out across -parallel workers; the
// tables are byte-identical at any worker count.
//
// Usage:
//
//	qeibench [-scale small|full] [-exp all|fig1|...|batch|bench] [-parallel N] [-csv]
//	qeibench -json [-out DIR] [-scale small|full] [-parallel N]
//	qeibench -batch N [-scale small|full]
//	qeibench -cpuprofile cpu.pprof -memprofile mem.pprof -exp bench
//
// -json runs the bench experiment (the workload × scheme matrix with
// metrics attached) and writes machine-readable results to
// BENCH_bench.json in -out: one record per cell with cycles, speedup
// over the software baseline, and the key simulator counters — plus
// the batch experiment's level-wise vs windowed records.
//
// -batch N runs the level-wise batch demo: every structure kind at
// batch size N, level-wise vs windowed simulated cycles with the
// engine's amortization counters, parity-checked against the
// per-query path, ending with a greppable "batch ..." counter line.
//
// -cpuprofile and -memprofile write pprof profiles of the run for the
// wall-clock optimization workflow (see README "Performance"): profile
// a run, inspect with `go tool pprof`, fix the hot spot, then prove
// cycle outputs unchanged with TestBenchGoldenCycles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"qei"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	expFlag := flag.String("exp", "all", "experiment to run: all or one of the registry names (fig1, tab1, ...)")
	parFlag := flag.Int("parallel", 1, "worker count for experiment jobs; 0 = GOMAXPROCS")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonFlag := flag.Bool("json", false, "run the bench matrix and write machine-readable BENCH_bench.json")
	outFlag := flag.String("out", ".", "directory for -json output")
	benchJSONFlag := flag.String("benchjson", "", "run the bench matrix and write its records to this exact file path")
	batchFlag := flag.Int("batch", 0, "run the level-wise batch demo at this batch size across every kind (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qeibench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qeibench: memprofile: %v\n", err)
			}
		}()
	}

	scale := qei.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = qei.FullScale
	default:
		fmt.Fprintf(os.Stderr, "qeibench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ctx := context.Background()
	if *batchFlag > 0 {
		t, counters, err := qei.BatchDemo(scale, *batchFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: batch: %v\n", err)
			os.Exit(1)
		}
		if *csvFlag {
			fmt.Printf("# batch\n%s\n", t.CSV())
		} else {
			fmt.Println(t.String())
		}
		// Greppable counter line (smoke tests key off batch/...).
		fmt.Printf("batch size %d batch/levels %d batch/translations_saved %d batch/lines_deduped %d batch/coalesced_probes %d batch/deferred %d\n",
			*batchFlag, counters["batch/levels"], counters["batch/translations_saved"],
			counters["batch/lines_deduped"], counters["batch/coalesced_probes"], counters["batch/deferred"])
		return
	}
	if *jsonFlag || *benchJSONFlag != "" {
		rs, err := qei.RunBench(scale, qei.WithContext(ctx), qei.WithParallelism(*parFlag))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: bench: %v\n", err)
			os.Exit(1)
		}
		// The JSON document also carries the batch experiment's records
		// (level-wise vs windowed, with host wall/alloc measurements);
		// TestBenchGoldenCycles pins only the "bench" rows.
		brs, err := qei.RunBatchBench(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: batch bench: %v\n", err)
			os.Exit(1)
		}
		rs = append(rs, brs...)
		path := *benchJSONFlag
		if *jsonFlag {
			if path, err = qei.WriteBenchJSON(*outFlag, "bench", rs); err != nil {
				fmt.Fprintf(os.Stderr, "qeibench: %v\n", err)
				os.Exit(1)
			}
		} else if err = qei.WriteBenchJSONFile(path, rs); err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(rs), path)
		return
	}
	want := strings.ToLower(*expFlag)
	ran := 0
	for _, e := range qei.Experiments() {
		if want != "all" && want != e.Name {
			continue
		}
		t, err := e.Run(scale, qei.WithContext(ctx), qei.WithParallelism(*parFlag))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csvFlag {
			fmt.Printf("# %s\n%s\n", e.Name, t.CSV())
		} else {
			fmt.Println(t.String())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "qeibench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}
