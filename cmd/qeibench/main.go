// Command qeibench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Independent experiment points fan out across -parallel workers; the
// tables are byte-identical at any worker count.
//
// Usage:
//
//	qeibench [-scale small|full] [-exp all|fig1|...|noc] [-parallel N] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"qei"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	expFlag := flag.String("exp", "all", "experiment to run: all or one of the registry names (fig1, tab1, ...)")
	parFlag := flag.Int("parallel", 1, "worker count for experiment jobs; 0 = GOMAXPROCS")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	scale := qei.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = qei.FullScale
	default:
		fmt.Fprintf(os.Stderr, "qeibench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ctx := context.Background()
	want := strings.ToLower(*expFlag)
	ran := 0
	for _, e := range qei.Experiments() {
		if want != "all" && want != e.Name {
			continue
		}
		t, err := e.Run(scale, qei.WithContext(ctx), qei.WithParallelism(*parFlag))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csvFlag {
			fmt.Printf("# %s\n%s\n", e.Name, t.CSV())
		} else {
			fmt.Println(t.String())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "qeibench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}
