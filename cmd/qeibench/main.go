// Command qeibench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	qeibench [-scale small|full] [-exp all|fig1|tab1|tab2|fig7|fig8|fig9|fig10|fig11|tab3|fig12|noc] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qei"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	expFlag := flag.String("exp", "all", "experiment to run: all, fig1, tab1, tab2, fig7, fig8, fig9, fig10, fig11, tab3, fig12, noc")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	scale := qei.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = qei.FullScale
	default:
		fmt.Fprintf(os.Stderr, "qeibench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	type experiment struct {
		name string
		run  func() (qei.TableData, error)
	}
	experiments := []experiment{
		{"fig1", func() (qei.TableData, error) { return qei.Fig1QueryTimeShare(scale) }},
		{"tab1", func() (qei.TableData, error) { return qei.TabI(), nil }},
		{"tab2", func() (qei.TableData, error) { return qei.TabII(), nil }},
		{"fig7", func() (qei.TableData, error) { return qei.Fig7Speedup(scale) }},
		{"fig8", func() (qei.TableData, error) { return qei.Fig8LatencySweep(scale) }},
		{"fig9", func() (qei.TableData, error) { return qei.Fig9EndToEnd(scale) }},
		{"fig10", func() (qei.TableData, error) { return qei.Fig10TupleSpace(scale) }},
		{"fig11", func() (qei.TableData, error) { return qei.Fig11InstrReduction(scale) }},
		{"tab3", func() (qei.TableData, error) { return qei.TabIII(), nil }},
		{"fig12", func() (qei.TableData, error) { return qei.Fig12DynamicPower(scale) }},
		{"noc", func() (qei.TableData, error) { return qei.NoCUtilization(scale) }},
	}

	want := strings.ToLower(*expFlag)
	ran := 0
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeibench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *csvFlag {
			fmt.Printf("# %s\n%s\n", e.name, t.CSV())
		} else {
			fmt.Println(t.String())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "qeibench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}
