// Command qeiprof reproduces the Fig. 1 profiling study: for each cloud
// workload it reports how much of the CPU time goes to data-query
// operations, plus a frontend/backend characterization of the query code
// (the paper's VTune top-down observations from Sec. II-A).
package main

import (
	"flag"
	"fmt"
	"os"

	"qei/internal/workload"
)

func main() {
	scaleFlag := flag.String("scale", "small", "scale: small or full")
	flag.Parse()

	var benches []workload.Benchmark
	if *scaleFlag == "full" {
		benches = workload.All()
	} else {
		benches = workload.AllSmall()
	}

	fmt.Printf("%-10s %-12s %-14s %-14s %-12s\n",
		"workload", "query_share", "mispredicts/q", "loads/query", "IPC(ROI)")
	for _, b := range benches {
		share, err := workload.ROIShare(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeiprof: %s: %v\n", b.Name(), err)
			os.Exit(1)
		}
		roi, err := workload.RunBaseline(b, workload.ROIOnly)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qeiprof: %s: %v\n", b.Name(), err)
			os.Exit(1)
		}
		q := float64(roi.Queries)
		fmt.Printf("%-10s %10.1f%% %14.2f %14.1f %12.2f\n",
			b.Name(), share*100,
			float64(roi.Core.Mispredicts)/q,
			float64(roi.Core.Loads)/q,
			roi.Core.IPC())
	}
	fmt.Println("\npaper band (Fig. 1): query operations take 23%-44% of CPU time")
}
