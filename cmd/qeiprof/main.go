// Command qeiprof reproduces the Fig. 1 profiling study: for each cloud
// workload it reports how much of the CPU time goes to data-query
// operations, plus a frontend/backend characterization of the query code
// (the paper's VTune top-down observations from Sec. II-A). Workloads
// profile in parallel across -parallel workers; output order is fixed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"qei/internal/runner"
	"qei/internal/workload"
)

func main() {
	scaleFlag := flag.String("scale", "small", "scale: small or full")
	parFlag := flag.Int("parallel", 1, "worker count; 0 = GOMAXPROCS")
	flag.Parse()

	var benches []workload.Benchmark
	if *scaleFlag == "full" {
		benches = workload.All()
	} else {
		benches = workload.AllSmall()
	}

	lines, err := runner.Map(context.Background(), *parFlag, benches,
		func(_ context.Context, _ int, b workload.Benchmark) (string, error) {
			share, err := workload.ROIShare(b)
			if err != nil {
				return "", fmt.Errorf("%s: %w", b.Name(), err)
			}
			roi, err := workload.RunBaseline(b, workload.ROIOnly)
			if err != nil {
				return "", fmt.Errorf("%s: %w", b.Name(), err)
			}
			q := float64(roi.Queries)
			return fmt.Sprintf("%-10s %10.1f%% %14.2f %14.1f %12.2f",
				b.Name(), share*100,
				float64(roi.Core.Mispredicts)/q,
				float64(roi.Core.Loads)/q,
				roi.Core.IPC()), nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qeiprof: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-10s %-12s %-14s %-14s %-12s\n",
		"workload", "query_share", "mispredicts/q", "loads/query", "IPC(ROI)")
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Println("\npaper band (Fig. 1): query operations take 23%-44% of CPU time")
}
