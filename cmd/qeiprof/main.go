// Command qeiprof reproduces the Fig. 1 profiling study: for each cloud
// workload it reports how much of the CPU time goes to data-query
// operations, plus a frontend/backend characterization of the query code
// (the paper's VTune top-down observations from Sec. II-A). Workloads
// profile in parallel across -parallel workers; output order is fixed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"qei/internal/metrics"
	"qei/internal/runner"
	"qei/internal/workload"
)

func main() {
	scaleFlag := flag.String("scale", "small", "scale: small or full")
	parFlag := flag.Int("parallel", 1, "worker count; 0 = GOMAXPROCS")
	metricsFlag := flag.Bool("metrics", false, "print merged counter totals across all profiled workloads")
	flag.Parse()

	var benches []workload.Benchmark
	if *scaleFlag == "full" {
		benches = workload.All()
	} else {
		benches = workload.AllSmall()
	}

	type profiled struct {
		line string
		snap metrics.Snapshot
	}
	rows, err := runner.Map(context.Background(), *parFlag, benches,
		func(_ context.Context, _ int, b workload.Benchmark) (profiled, error) {
			share, err := workload.ROIShare(b)
			if err != nil {
				return profiled{}, fmt.Errorf("%s: %w", b.Name(), err)
			}
			var opts []workload.RunOption
			if *metricsFlag {
				opts = append(opts, workload.WithMetrics(metrics.NewRegistry()))
			}
			roi, err := workload.RunBaseline(b, workload.ROIOnly, opts...)
			if err != nil {
				return profiled{}, fmt.Errorf("%s: %w", b.Name(), err)
			}
			q := float64(roi.Queries)
			return profiled{
				line: fmt.Sprintf("%-10s %10.1f%% %14.2f %14.1f %12.2f",
					b.Name(), share*100,
					float64(roi.Core.Mispredicts)/q,
					float64(roi.Core.Loads)/q,
					roi.Core.IPC()),
				snap: roi.Metrics,
			}, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qeiprof: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-10s %-12s %-14s %-14s %-12s\n",
		"workload", "query_share", "mispredicts/q", "loads/query", "IPC(ROI)")
	for _, r := range rows {
		fmt.Println(r.line)
	}
	fmt.Println("\npaper band (Fig. 1): query operations take 23%-44% of CPU time")

	if *metricsFlag {
		snaps := make([]metrics.Snapshot, 0, len(rows))
		for _, r := range rows {
			snaps = append(snaps, r.snap)
		}
		merged := metrics.Merge(snaps...).NonZero()
		fmt.Printf("\nmerged counters across %d workloads (%d non-zero)\n", len(rows), len(merged))
		fmt.Print(merged.String())
	}
}
