package qei

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// The "batch" experiment: level-wise vs windowed QueryBatch across
// structure kinds × batch sizes. Every cell verifies the level-wise
// results byte-for-byte against both the windowed batch and the
// sequential per-query path before reporting a speedup, so the numbers
// can only come from a functionally identical execution.

// batchKinds are the kinds the experiment sweeps — every built-in
// fixed-length-key kind with a level-wise plan.
var batchKinds = []StructKind{
	KindBTree, KindBST, KindSkipList, KindCuckoo, KindHashTable, KindLinkedList,
}

// batchJob is one experiment cell.
type batchJob struct {
	kind StructKind
	n    int
}

func batchJobsFor(s Scale) []batchJob {
	sizes := []int{16, 64}
	if s == FullScale {
		sizes = []int{16, 64, 256}
	}
	var jobs []batchJob
	for _, k := range batchKinds {
		for _, n := range sizes {
			jobs = append(jobs, batchJob{kind: k, n: n})
		}
	}
	return jobs
}

// batchTableSize picks the structure population: big enough that tree
// walks have real depth, short enough that the linked list's O(n) scan
// keeps the windowed oracle fast.
func batchTableSize(s Scale, kind StructKind) int {
	if kind == KindLinkedList {
		if s == FullScale {
			return 512
		}
		return 256
	}
	if s == FullScale {
		return 8192
	}
	return 2048
}

// batchGenKeys generates n distinct keyLen-byte keys with deterministic
// values (the experiment's structure population).
func batchGenKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, rng.Uint64()|1)
	}
	return keys, vals
}

// batchProbeSet draws the probe keys: mostly present keys in shuffled
// order, with duplicates (coalescing work) and absent keys (not-found
// paths) mixed in.
func batchProbeSet(table [][]byte, absent [][]byte, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	probes := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i > 0 && rng.Intn(8) == 0:
			probes = append(probes, probes[rng.Intn(len(probes))]) // duplicate
		case rng.Intn(8) == 0:
			probes = append(probes, absent[rng.Intn(len(absent))]) // miss
		default:
			probes = append(probes, table[rng.Intn(len(table))])
		}
	}
	return probes
}

// batchCell is one measured experiment cell.
type batchCell struct {
	job       batchJob
	winCycles uint64
	lwCycles  uint64
	winWall   time.Duration
	lwWall    time.Duration
	lwAllocs  uint64
	// level-wise engine counters for the cell's run
	levels, transSaved, linesDeduped, coalesced, deferred uint64
}

func (c batchCell) speedup() float64 {
	if c.lwCycles == 0 {
		return 0
	}
	return float64(c.winCycles) / float64(c.lwCycles)
}

// runBatchCell measures one kind × batch-size cell: a windowed run, a
// level-wise run, and a sequential per-query oracle, each on its own
// freshly built machine so cache and TLB state are comparable. It
// errors if the three result sets are not identical.
func runBatchCell(s Scale, job batchJob) (batchCell, error) {
	const keyLen = 16
	seed := int64(1000*int(job.kind) + job.n)
	tableN := batchTableSize(s, job.kind)
	keys, values := batchGenKeys(tableN, keyLen, seed)
	absent, _ := batchGenKeys(job.n, keyLen, seed+1)
	// Absent keys must not collide with the table population.
	inTable := make(map[string]bool, tableN)
	for _, k := range keys {
		inTable[string(k)] = true
	}
	for i, k := range absent {
		for inTable[string(k)] {
			extra, _ := batchGenKeys(1, keyLen, seed+int64(100+i))
			k = extra[0]
		}
		absent[i] = k
	}
	probes := batchProbeSet(keys, absent, job.n, seed+2)

	cell := batchCell{job: job}

	// Sequential per-query oracle.
	so := NewSystem(CoreIntegrated)
	to, err := so.Build(job.kind, keys, values)
	if err != nil {
		return cell, err
	}
	oracle := make([]Result, len(probes))
	for i, p := range probes {
		r, err := so.Query(to, p)
		if err != nil {
			return cell, err
		}
		oracle[i] = r
	}

	// Windowed batch.
	sw := NewSystem(CoreIntegrated)
	tw, err := sw.Build(job.kind, keys, values)
	if err != nil {
		return cell, err
	}
	winStart := sw.Now()
	wallStart := time.Now()
	winRes, err := sw.QueryBatch(tw, probes, WithBatchMode(BatchWindowed))
	if err != nil {
		return cell, err
	}
	cell.winWall = time.Since(wallStart)
	cell.winCycles = sw.Now() - winStart

	// Level-wise batch.
	sl := NewSystem(CoreIntegrated)
	tl, err := sl.Build(job.kind, keys, values)
	if err != nil {
		return cell, err
	}
	lwStart := sl.Now()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wallStart = time.Now()
	lwRes, err := sl.QueryBatch(tl, probes, WithBatchMode(BatchLevelWise))
	if err != nil {
		return cell, err
	}
	cell.lwWall = time.Since(wallStart)
	runtime.ReadMemStats(&ms1)
	cell.lwAllocs = ms1.Mallocs - ms0.Mallocs
	cell.lwCycles = sl.Now() - lwStart
	st := sl.accel.Stats()
	cell.levels = st.BatchLevels
	cell.transSaved = st.BatchTranslationsSaved
	cell.linesDeduped = st.BatchLinesDeduped
	cell.coalesced = st.BatchCoalescedProbes
	cell.deferred = st.BatchDeferred

	// The contract the speedup stands on: identical results on all
	// three paths.
	for i := range probes {
		for _, pair := range [][2]Result{{lwRes[i], oracle[i]}, {winRes[i], oracle[i]}} {
			g, w := pair[0], pair[1]
			if g.Found != w.Found || g.Value != w.Value || (g.Err == nil) != (w.Err == nil) {
				return cell, fmt.Errorf("qei: batch %s/%d: probe %d diverges from per-query path (got found=%v value=%d, want found=%v value=%d)",
					job.kind, job.n, i, g.Found, g.Value, w.Found, w.Value)
			}
		}
	}
	return cell, nil
}

// BatchSpeedup reproduces the level-wise batching evaluation: simulated
// makespan of the level-wise engine vs the windowed path per structure
// kind and batch size, with the engine's amortization counters.
func BatchSpeedup(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title: "Batch — level-wise vs windowed QueryBatch (simulated cycles)",
		Headers: []string{"kind", "batch", "windowed_cyc", "levelwise_cyc",
			"speedup_x", "levels", "trans_saved", "lines_deduped", "coalesced"},
	}
	rows, err := expRows(expConfigFor(opts), batchJobsFor(s),
		func(_ context.Context, _ int, job batchJob) ([][]string, error) {
			c, err := runBatchCell(s, job)
			if err != nil {
				return nil, err
			}
			return [][]string{{
				job.kind.String(), f("%d", job.n),
				f("%d", c.winCycles), f("%d", c.lwCycles), f("%.2f", c.speedup()),
				f("%d", c.levels), f("%d", c.transSaved),
				f("%d", c.linesDeduped), f("%d", c.coalesced),
			}}, nil
		})
	t.Rows = rows
	return t, err
}

// BatchDemo runs the level-wise vs windowed comparison at one batch
// size across every kind (the qeibench -batch path), returning the
// rendered table and the aggregate engine counters summed over the
// cells. Every cell is parity-checked against the per-query path.
func BatchDemo(s Scale, n int) (TableData, map[string]uint64, error) {
	if n < 2 {
		return TableData{}, nil, fmt.Errorf("qei: batch demo needs a batch size >= 2, got %d", n)
	}
	t := TableData{
		Title: fmt.Sprintf("Batch demo — level-wise vs windowed at batch size %d (simulated cycles)", n),
		Headers: []string{"kind", "batch", "windowed_cyc", "levelwise_cyc",
			"speedup_x", "levels", "trans_saved", "lines_deduped", "coalesced"},
	}
	agg := map[string]uint64{
		"batch/levels": 0, "batch/translations_saved": 0,
		"batch/lines_deduped": 0, "batch/coalesced_probes": 0, "batch/deferred": 0,
	}
	for _, k := range batchKinds {
		c, err := runBatchCell(s, batchJob{kind: k, n: n})
		if err != nil {
			return t, nil, err
		}
		t.Rows = append(t.Rows, []string{
			k.String(), f("%d", n),
			f("%d", c.winCycles), f("%d", c.lwCycles), f("%.2f", c.speedup()),
			f("%d", c.levels), f("%d", c.transSaved),
			f("%d", c.linesDeduped), f("%d", c.coalesced),
		})
		agg["batch/levels"] += c.levels
		agg["batch/translations_saved"] += c.transSaved
		agg["batch/lines_deduped"] += c.linesDeduped
		agg["batch/coalesced_probes"] += c.coalesced
		agg["batch/deferred"] += c.deferred
	}
	return t, agg, nil
}

// RunBatchBench runs the batch sweep serially and returns one
// machine-readable record per cell — the "batch" rows of
// BENCH_bench.json, carrying host wall-clock and allocation
// measurements beside the simulated cycles.
func RunBatchBench(s Scale) ([]BenchResult, error) {
	var out []BenchResult
	for _, job := range batchJobsFor(s) {
		c, err := runBatchCell(s, job)
		if err != nil {
			return nil, err
		}
		r := BenchResult{
			Experiment:     "batch",
			Workload:       fmt.Sprintf("%s/%d", job.kind, job.n),
			Scheme:         CoreIntegrated.String(),
			BaselineCycles: c.winCycles,
			Cycles:         c.lwCycles,
			Queries:        uint64(job.n),
			CyclesPerQuery: float64(c.lwCycles) / float64(job.n),
			Speedup:        c.speedup(),
			Counters: map[string]uint64{
				"qei/batch/levels":             c.levels,
				"qei/batch/translations_saved": c.transSaved,
				"qei/batch/lines_deduped":      c.linesDeduped,
				"qei/batch/coalesced_probes":   c.coalesced,
				"qei/batch/deferred":           c.deferred,
			},
			WallNanos:         c.lwWall.Nanoseconds(),
			BaselineWallNanos: c.winWall.Nanoseconds(),
			Allocs:            c.lwAllocs,
		}
		out = append(out, r)
	}
	return out, nil
}
