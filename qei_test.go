package qei

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func testKeys(n, keyLen int, seed int64) ([][]byte, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
		vals = append(vals, rng.Uint64()|1)
	}
	return keys, vals
}

func TestSystemQuickstartFlow(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(500, 16, 1)
	table := sys.MustBuildCuckoo(keys, vals)
	for i := 0; i < 100; i++ {
		res, err := sys.Query(table, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, res, vals[i])
		}
		if res.Latency == 0 {
			t.Fatal("zero latency reported")
		}
	}
	res, err := sys.Query(table, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("absent key found")
	}
	if sys.Stats().Queries != 101 {
		t.Fatalf("stats queries = %d", sys.Stats().Queries)
	}
}

func TestAllBuildersAndSchemes(t *testing.T) {
	keys, vals := testKeys(200, 16, 2)
	for _, sch := range Schemes() {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			t.Parallel()
			sys := NewSystem(sch)
			tables := []Table{}
			for _, build := range []func() (Table, error){
				func() (Table, error) { return sys.BuildCuckoo(keys, vals) },
				func() (Table, error) { return sys.BuildHashTable(keys, vals) },
				func() (Table, error) { return sys.BuildSkipList(keys, vals) },
				func() (Table, error) { return sys.BuildBST(keys, vals, 64) },
				func() (Table, error) { return sys.BuildLinkedList(keys[:30], vals[:30]) },
			} {
				tb, err := build()
				if err != nil {
					t.Fatal(err)
				}
				tables = append(tables, tb)
			}
			for ti, tb := range tables {
				n := 50
				if tb.Kind == KindLinkedList {
					n = 30
				}
				for i := 0; i < n; i++ {
					res, err := sys.Query(tb, keys[i])
					if err != nil {
						t.Fatalf("%s: %v", tb.Kind, err)
					}
					if !res.Found || res.Value != vals[i] {
						t.Fatalf("table %d (%s) key %d: got %+v want %d", ti, tb.Kind, i, res, vals[i])
					}
				}
			}
		})
	}
}

func TestTrieScanAPI(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	tr, err := sys.BuildTrie([][]byte{[]byte("alpha"), []byte("beta")}, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Scan(tr, []byte("xx alpha yy beta zz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 || res.Matches[0] != 10 || res.Matches[1] != 20 {
		t.Fatalf("matches = %v", res.Matches)
	}
	// Scan on a non-trie table must be rejected.
	keys, vals := testKeys(10, 8, 3)
	ht, _ := sys.BuildHashTable(keys, vals)
	if _, err := sys.Scan(ht, []byte("x")); err == nil {
		t.Fatal("Scan accepted a hash table")
	}
}

func TestBuilderValidation(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	if _, err := sys.BuildCuckoo(nil, nil); err == nil {
		t.Fatal("empty key set accepted")
	}
	if _, err := sys.BuildCuckoo([][]byte{{1, 2}}, []uint64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := sys.BuildCuckoo([][]byte{{1, 2}, {1, 2, 3}}, []uint64{1, 2}); err == nil {
		t.Fatal("ragged keys accepted")
	}
	if _, err := sys.BuildTrie([][]byte{[]byte("x")}, []uint64{0}); err == nil {
		t.Fatal("zero trie value accepted")
	}
	if _, err := sys.BuildBST([][]byte{{1}}, []uint64{1}, -1); err == nil {
		t.Fatal("negative payload accepted")
	}
}

func TestAsyncQueryFlow(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(100, 16, 4)
	table := sys.MustBuildCuckoo(keys, vals)
	handles := make([]AsyncHandle, 10)
	for i := range handles {
		h, err := sys.QueryAsync(table, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := sys.Wait(h)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("async %d: %+v want %d", i, res, vals[i])
		}
	}
}

func TestQueryLatencyOrderingAcrossSchemes(t *testing.T) {
	keys, vals := testKeys(300, 32, 5)
	latency := func(s Scheme) uint64 {
		sys := NewSystem(s)
		tb, err := sys.BuildSkipList(keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for i := 0; i < 20; i++ {
			res, err := sys.Query(tb, keys[i*10])
			if err != nil {
				t.Fatal(err)
			}
			total += res.Latency
		}
		return total
	}
	ci := latency(CoreIntegrated)
	di := latency(DeviceIndirect)
	if ci >= di {
		t.Fatalf("Core-integrated latency (%d) should beat Device-indirect (%d)", ci, di)
	}
}

func TestExperimentTablesRender(t *testing.T) {
	tabI := TabI()
	if len(tabI.Rows) != 5 {
		t.Fatalf("TabI rows = %d", len(tabI.Rows))
	}
	if !strings.Contains(tabI.String(), "Core-integrated") {
		t.Fatal("TabI text missing Core-integrated")
	}
	if !strings.Contains(tabI.CSV(), "scheme,") {
		t.Fatal("CSV header missing")
	}
	tabII := TabII()
	if len(tabII.Rows) == 0 {
		t.Fatal("TabII empty")
	}
	tabIII := TabIII()
	if len(tabIII.Rows) != 3 {
		t.Fatalf("TabIII rows = %d", len(tabIII.Rows))
	}
}

func TestFig1SmallScale(t *testing.T) {
	res, err := Fig1QueryTimeShare(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Fig1 rows = %d, want 5", len(res.Rows))
	}
	for _, r := range res.Rows {
		var pct float64
		if _, err := fmt.Sscanf(r[1], "%f", &pct); err != nil {
			t.Fatal(err)
		}
		if pct < 15 || pct > 60 {
			t.Fatalf("%s query share %.1f%% outside plausible band", r[0], pct)
		}
	}
}

func TestFig11SmallScale(t *testing.T) {
	res, err := Fig11InstrReduction(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		var red float64
		fmt.Sscanf(r[3], "%f", &red)
		if red < 50 {
			t.Fatalf("%s instruction reduction only %.1f%%", r[0], red)
		}
	}
}

func TestPublicTracing(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(64, 16, 70)
	tb := sys.MustBuildCuckoo(keys, vals)
	sys.EnableTracing()
	for i := 0; i < 12; i++ {
		if _, err := sys.Query(tb, keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	doc := sys.ExportTrace()
	if !strings.Contains(doc, `"ph":"X"`) || !strings.Contains(doc, "query-") {
		t.Fatalf("trace export malformed:\n%s", doc)
	}
}
