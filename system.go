package qei

import (
	"fmt"

	"qei/internal/cfa"
	"qei/internal/epoch"
	"qei/internal/faultinject"
	"qei/internal/hwdesc"
	"qei/internal/isa"
	"qei/internal/machine"
	"qei/internal/mem"
	"qei/internal/metrics"
	"qei/internal/qei"
	"qei/internal/scheme"
	"qei/internal/trace"
)

// Scheme selects how the accelerator is integrated into the CPU
// (Sec. V / Sec. VI-A of the paper).
type Scheme int

// The five evaluated integration schemes.
const (
	// CoreIntegrated is the paper's proposal: QST/CEE beside each core's
	// L2 and L2-TLB, comparators distributed into the CHAs.
	CoreIntegrated Scheme = iota
	// CHATLB places an accelerator with a dedicated TLB in every CHA.
	CHATLB
	// CHANoTLB places accelerators in the CHAs but translates through
	// the core's MMU.
	CHANoTLB
	// DeviceDirect attaches one accelerator to the NoC as a special core.
	DeviceDirect
	// DeviceIndirect attaches the accelerator behind a standard device
	// interface, paying interface latency on every access.
	DeviceIndirect
)

// Schemes lists all integration schemes in the paper's order.
func Schemes() []Scheme {
	return []Scheme{CHATLB, CHANoTLB, DeviceDirect, DeviceIndirect, CoreIntegrated}
}

func (s Scheme) String() string { return s.kind().String() }

func (s Scheme) kind() scheme.Kind {
	switch s {
	case CoreIntegrated:
		return scheme.CoreIntegrated
	case CHATLB:
		return scheme.CHATLB
	case CHANoTLB:
		return scheme.CHANoTLB
	case DeviceDirect:
		return scheme.DeviceDirect
	case DeviceIndirect:
		return scheme.DeviceIndirect
	default:
		panic(fmt.Sprintf("qei: unknown scheme %d", int(s)))
	}
}

// Table is a handle to a data structure laid out in the simulated
// machine's memory and described by a Fig. 4 metadata header.
type Table struct {
	header mem.VAddr
	// Kind is the structure's type (KindCuckoo, KindSkipList, ...).
	Kind StructKind
	// Label names a KindCustom table (the diagnostics label passed to
	// WriteTableHeader); empty for built-in kinds.
	Label string
	// KeyLen is the fixed key length stored in the header.
	KeyLen int
}

// Name returns the table's display name: the kind name for built-in
// structures, the registration label for custom firmware tables.
func (t Table) Name() string {
	if t.Kind == KindCustom && t.Label != "" {
		return t.Label
	}
	return t.Kind.String()
}

// HeaderAddr returns the simulated virtual address of the structure's
// metadata header (what software passes to the QUERY instructions).
func (t Table) HeaderAddr() uint64 { return uint64(t.header) }

// Result is the outcome of one accelerated query.
type Result struct {
	// Found reports whether the key matched.
	Found bool
	// Value is the matched 64-bit value (in real applications, a pointer
	// to the data).
	Value uint64
	// Matches holds all match values of a trie scan, in match order.
	Matches []uint64
	// Latency is the query's end-to-end cycle count as observed by the
	// issuing core (issue to result writeback); for a fallback result it
	// is the software walker's execution time.
	Latency uint64
	// Err carries the architectural exception, if the query faulted.
	Err error
	// FellBack marks a result produced by the software baseline walker
	// after the accelerator faulted (WithFallback).
	FellBack bool
}

// System is one simulated machine with a QEI accelerator attached to
// core 0 under a chosen integration scheme.
type System struct {
	m     *machine.Machine
	reg   *cfa.Registry
	accel *qei.Accelerator
	sch   Scheme
	seed  int64
	now   uint64
	tag   uint64
	// mreg/tracer are the observability sinks created by
	// WithMetrics/WithTimeline; nil when the respective option is off.
	mreg   *metrics.Registry
	tracer *trace.Tracer
	// fi is the fault-injection harness (WithFaultInjection); nil keeps
	// every hook a free no-op.
	fi *faultinject.Injector
	// fallback is the graceful-degradation policy (WithFallback); nil
	// disables software fallback. fallbacks counts queries served by it.
	fallback  *FallbackPolicy
	fallbacks uint64
	// gc is the epoch-based reclamation domain coordinating writers with
	// in-flight queries; created lazily by the first mutable build (see
	// ensureGC), nil for read-only systems so no query path pays for it.
	gc *epoch.GC
	// pinnedTags maps in-flight async query tags to the epoch they
	// pinned at admission; Wait/Poll unpin on completion or abort.
	pinnedTags map[uint64]uint64
}

// Option configures a System at construction.
type Option func(*sysConfig)

type sysConfig struct {
	qstSize     int
	tracing     bool
	metrics     bool
	trace       bool
	seed        int64
	faults      *FaultSpec
	cycleBudget uint64
	fallback    *FallbackPolicy
	spec        *MachineSpec
}

// WithQSTSize overrides the scheme's per-instance QST entry count — the
// Fig. 10 tuple-space ablation knob, without reaching into
// internal/scheme constants.
func WithQSTSize(n int) Option {
	return func(c *sysConfig) { c.qstSize = n }
}

// WithQuerySpans enables accelerator query-span recording from the
// first query: one span per query (issue→completion, QST instance and
// slot), exported by ExportTrace when the unified timeline is off. See
// EnableTracing for enabling mid-run.
func WithQuerySpans() Option {
	return func(c *sysConfig) { c.tracing = true }
}

// WithTracing is the deprecated former name of WithQuerySpans, kept so
// existing callers build; it recorded accelerator query spans only and
// was easy to confuse with WithTrace (the unified tracer).
//
// Deprecated: use WithQuerySpans.
func WithTracing() Option { return WithQuerySpans() }

// WithSeed sets the seed for the system's randomized software routines
// (skip-list level coins in mutable tables). Default 7.
func WithSeed(seed int64) Option {
	return func(c *sysConfig) { c.seed = seed }
}

// WithMetrics attaches a simulator-wide metrics registry: every
// component (cores, caches, TLBs, NoC, memory, accelerator) registers
// its counters under component-path names, and Metrics() reads them.
// Off by default; the disabled path costs nothing.
func WithMetrics() Option {
	return func(c *sysConfig) { c.metrics = true }
}

// WithTimeline attaches the unified cycle-stamped event tracer: all
// components emit events (query spans, cache fills, page walks, NoC
// transfers, remote compares) onto one timeline, and ExportTrace renders
// it as Chrome trace-event JSON. Off by default.
func WithTimeline() Option {
	return func(c *sysConfig) { c.trace = true }
}

// WithTrace is the deprecated former name of WithTimeline, kept so
// existing callers build; the name collided with the narrower
// WithTracing query-span option.
//
// Deprecated: use WithTimeline.
func WithTrace() Option { return WithTimeline() }

// WithFaultInjection arms the deterministic fault-injection harness
// with the given replayable plan. Faults fire only while the
// accelerator executes a query — builders and the software fallback
// stay exact — and every injection decision is a pure function of the
// spec's seed, so reruns reproduce failures bit for bit. A spec with
// all rates zero wires the harness but never fires, changing nothing.
func WithFaultInjection(f FaultSpec) Option {
	return func(c *sysConfig) { c.faults = &f }
}

// WithQueryCycleBudget arms the per-query watchdog: an accelerator
// execution attempt that burns more than the given number of cycles
// aborts with ErrQueryTimeout instead of holding its QST slot forever
// (stuck walks over corrupt structures, runaway firmware). 0 — the
// default — disables the watchdog.
func WithQueryCycleBudget(cycles uint64) Option {
	return func(c *sysConfig) { c.cycleBudget = cycles }
}

// WithFallback enables graceful degradation for blocking queries: after
// p.AfterFaults faulting accelerator executions, the query re-executes
// on the software baseline walker (see FallbackPolicy). Fallbacks are
// counted in the qei/fallback_total metric and appear on the trace
// timeline.
func WithFallback(p FallbackPolicy) Option {
	return func(c *sysConfig) { c.fallback = &p }
}

// NewSystem builds a 24-core machine (Tab. II configuration) with a QEI
// accelerator in the given integration scheme.
func NewSystem(s Scheme, opts ...Option) *System {
	cfg := sysConfig{seed: 7}
	for _, o := range opts {
		o(&cfg)
	}
	p := scheme.ForKind(s.kind())
	m := machine.NewDefault()
	if cfg.spec != nil {
		// The spec contributes the chip and the accelerator sizing; the
		// integration scheme stays NewSystem's argument. Specs are
		// validated at construction, so materialization cannot fail.
		d := cfg.spec.desc()
		d.Scheme = hwdesc.SchemeName(s.kind())
		sp, err := d.SchemeParams()
		if err != nil {
			panic(err) // unreachable: every MachineSpec constructor validates
		}
		p = sp
		m = machine.New(d.MachineConfig())
	}
	if cfg.qstSize > 0 {
		p.QSTEntriesPerInstance = cfg.qstSize
	}
	var mreg *metrics.Registry
	if cfg.metrics {
		mreg = metrics.NewRegistry()
	}
	var tracer *trace.Tracer
	if cfg.trace {
		tracer = trace.New(0)
	}
	m.AttachObservability(mreg, tracer)
	reg := cfa.DefaultRegistry()
	sys := &System{
		m:      m,
		reg:    reg,
		accel:  qei.New(m, p, reg, 0),
		sch:    s,
		seed:   cfg.seed,
		mreg:   mreg,
		tracer: tracer,
	}
	sys.accel.RegisterMetrics(mreg)
	sys.accel.SetTracer(tracer)
	if cfg.tracing {
		sys.accel.EnableTracing()
	}
	if cfg.faults != nil {
		sys.fi = faultinject.New(cfg.faults.sched)
		m.AttachFaultInjection(sys.fi)
		sys.accel.SetFaultInjector(sys.fi)
	}
	if cfg.cycleBudget > 0 {
		sys.accel.SetCycleBudget(cfg.cycleBudget)
	}
	sys.fallback = cfg.fallback
	// Robustness counters live beside the accelerator's qei/ metrics
	// (Scoped and RegisterFunc are nil-safe, like all registry wiring).
	q := mreg.Scoped("qei")
	q.RegisterFunc("fallback_total", func() uint64 { return sys.fallbacks })
	if cfg.faults != nil {
		f := mreg.Scoped("faults")
		f.RegisterFunc("injected", func() uint64 { return sys.fi.Injected() })
		for k := 0; k < faultinject.NumKinds(); k++ {
			kind := faultinject.Kind(k)
			f.RegisterFunc(kind.String()+"/hits", func() uint64 { return sys.fi.Hits(kind) })
		}
	}
	return sys
}

// FaultsInjected reports how many faults the injection harness has
// fired so far (0 without WithFaultInjection).
func (s *System) FaultsInjected() uint64 { return s.fi.Injected() }

// Fallbacks reports how many queries were served by the software
// fallback path (0 without WithFallback).
func (s *System) Fallbacks() uint64 { return s.fallbacks }

// QSTCapacity returns the total number of QST entries across the
// accelerator's instances — the bound on outstanding async queries.
func (s *System) QSTCapacity() int { return s.accel.Capacity() }

// Scheme reports the system's integration scheme.
func (s *System) Scheme() Scheme { return s.sch }

// Now returns the simulated cycle reached by the issue clock.
func (s *System) Now() uint64 { return s.now }

// Advance moves the issue clock forward by n cycles (idle time between
// query bursts).
func (s *System) Advance(n uint64) { s.now += n }

// Write stores raw bytes at a fresh cacheline-aligned location in the
// simulated address space and returns its address — how applications
// stage probe keys and payloads.
func (s *System) Write(data []byte) uint64 {
	a := s.m.AS.AllocLines(uint64(len(data)))
	s.m.AS.MustWrite(a, data)
	return uint64(a)
}

// validateKV checks builder inputs.
func validateKV(keys [][]byte, values []uint64) error {
	if len(keys) != len(values) {
		return fmt.Errorf("qei: %d keys but %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return fmt.Errorf("qei: empty key set")
	}
	l := len(keys[0])
	for i, k := range keys {
		if len(k) != l {
			return fmt.Errorf("qei: key %d has length %d, want %d", i, len(k), l)
		}
	}
	return nil
}

// BuildCuckoo lays out a DPDK-style two-choice bucketed cuckoo hash
// table holding the given fixed-length keys. It is Build(KindCuckoo, ...).
func (s *System) BuildCuckoo(keys [][]byte, values []uint64) (Table, error) {
	return s.Build(KindCuckoo, keys, values)
}

// MustBuildCuckoo is BuildCuckoo, panicking on invalid input.
func (s *System) MustBuildCuckoo(keys [][]byte, values []uint64) Table {
	t, err := s.BuildCuckoo(keys, values)
	if err != nil {
		panic(err)
	}
	return t
}

// BuildHashTable lays out a chained hash table (the hash-table-of-
// linked-lists combined structure). It is Build(KindHashTable, ...).
func (s *System) BuildHashTable(keys [][]byte, values []uint64) (Table, error) {
	return s.Build(KindHashTable, keys, values)
}

// BuildSkipList lays out a sorted skip list (RocksDB-memtable style).
// It is Build(KindSkipList, ...).
func (s *System) BuildSkipList(keys [][]byte, values []uint64) (Table, error) {
	return s.Build(KindSkipList, keys, values)
}

// BuildBST lays out a binary search tree whose nodes carry payload extra
// bytes of object body (the JVM object-tree shape). It is
// Build(KindBST, ..., WithBSTPayload(payload)).
func (s *System) BuildBST(keys [][]byte, values []uint64, payload int) (Table, error) {
	return s.Build(KindBST, keys, values, WithBSTPayload(payload))
}

// BuildLinkedList lays out a singly linked list in the given order.
// It is Build(KindLinkedList, ...).
func (s *System) BuildLinkedList(keys [][]byte, values []uint64) (Table, error) {
	return s.Build(KindLinkedList, keys, values)
}

// BuildBTree bulk-loads a B+-tree index (fanout 16) over the keys.
// It is Build(KindBTree, ...).
func (s *System) BuildBTree(keys [][]byte, values []uint64) (Table, error) {
	return s.Build(KindBTree, keys, values)
}

// BuildTrie compiles a keyword dictionary into an Aho-Corasick automaton
// for Scan queries. values must be non-zero; values[i] is reported when
// keywords[i] matches. It is Build(KindTrie, keywords, values).
func (s *System) BuildTrie(keywords [][]byte, values []uint64) (Table, error) {
	return s.Build(KindTrie, keywords, values)
}

// Query performs a blocking QUERY_B lookup of key in t through the
// accelerator, returning the architectural result and its latency.
func (s *System) Query(t Table, key []byte) (Result, error) {
	keyAddr := s.Write(key)
	return s.QueryAt(t, keyAddr, len(key))
}

// QueryAt is Query for a key already staged in simulated memory. With
// WithFallback, a query whose accelerator executions keep faulting is
// transparently re-executed on the software baseline walker; the
// returned result then has FellBack set.
func (s *System) QueryAt(t Table, keyAddr uint64, keyLen int) (Result, error) {
	res, err := s.issueAccel(t, keyAddr, keyLen)
	if err != nil || res.Err == nil || s.fallback == nil {
		return res, err
	}
	// Re-execute on the accelerator until the policy's fault tolerance
	// is exhausted (the engine's internal transient-retry already ran
	// inside each execution), then degrade to the software walker.
	for faults := 1; faults < s.fallback.afterFaults(); faults++ {
		res, err = s.issueAccel(t, keyAddr, keyLen)
		if err != nil || res.Err == nil {
			return res, err
		}
	}
	return s.softwareFallback(t, keyAddr, keyLen, res)
}

// issueAccel runs one blocking accelerator execution of a query,
// advancing the issue clock to its completion.
func (s *System) issueAccel(t Table, keyAddr uint64, keyLen int) (Result, error) {
	// A blocking query's in-flight window is the call itself: pin the
	// epoch at admission, release it once the result is architectural.
	if pinned, ok := s.pinQuery(); ok {
		defer s.gc.Unpin(pinned)
	}
	tag := s.nextTag()
	desc := &isa.QueryDesc{
		HeaderAddr: t.header,
		KeyAddr:    mem.VAddr(keyAddr),
		Tag:        tag,
	}
	if t.Kind == KindTrie {
		desc.KeyLen = uint32(keyLen)
	}
	done, err := s.accel.IssueBlocking(desc, s.now)
	if err != nil {
		return Result{}, err
	}
	r, ok := s.accel.Result(tag)
	if !ok {
		return Result{}, fmt.Errorf("qei: result for tag %d missing", tag)
	}
	res := Result{
		Found:   r.Found,
		Value:   r.Value,
		Matches: r.Matches,
		Latency: done - s.now,
		Err:     r.Fault,
	}
	s.now = done
	return res, nil
}

// Scan runs input through a trie table (the Snort literal-matching use
// case): one query whose "key" is the whole input buffer.
func (s *System) Scan(t Table, input []byte) (Result, error) {
	if t.Kind != KindTrie {
		return Result{}, fmt.Errorf("qei: Scan needs a trie table, got %s", t.Kind)
	}
	return s.Query(t, input)
}

// AsyncHandle identifies an in-flight non-blocking query.
type AsyncHandle struct {
	tag        uint64
	resultAddr mem.VAddr
	accepted   uint64
}

// QueryAsync issues a non-blocking QUERY_NB lookup. The issue clock
// advances only to the acceptance point; Wait retrieves the result.
// When every QST entry is occupied it returns ErrQSTFull — drain a
// completion with Wait and reissue, or use QueryBatch.
func (s *System) QueryAsync(t Table, key []byte) (AsyncHandle, error) {
	keyAddr := s.Write(key)
	resAddr := s.m.AS.AllocLines(mem.LineSize)
	tag := s.nextTag()
	desc := &isa.QueryDesc{
		HeaderAddr: t.header,
		KeyAddr:    mem.VAddr(keyAddr),
		ResultAddr: resAddr,
		Tag:        tag,
	}
	if t.Kind == KindTrie {
		desc.KeyLen = uint32(len(key))
	}
	pinned, havePin := s.pinQuery()
	accepted, err := s.accel.TryIssueNonBlocking(desc, s.now)
	if err != nil {
		if havePin {
			s.gc.Unpin(pinned)
		}
		return AsyncHandle{}, err
	}
	if havePin {
		// The pin lives in the QST with the query; Wait/Poll release it
		// when the completion (or abort) is observed.
		s.trackPin(tag, pinned)
	}
	s.now = accepted
	return AsyncHandle{tag: tag, resultAddr: resAddr, accepted: accepted}, nil
}

// Wait retrieves an async query's result (the SNAPSHOT_READ loop of
// List 2), advancing the issue clock to its completion if needed. It
// returns ErrUnknownHandle for a foreign handle, ErrAborted for a query
// flushed by Interrupt, and ErrResultPending when the completion flag
// has not been written.
func (s *System) Wait(h AsyncHandle) (Result, error) {
	r, ok := s.accel.Result(h.tag)
	if !ok {
		return Result{}, ErrUnknownHandle
	}
	if r.Aborted {
		s.unpinTag(h.tag)
		return Result{}, fmt.Errorf("qei: query %d: %w", h.tag, ErrAborted)
	}
	if r.Done > s.now {
		s.now = r.Done
	}
	// The completion flag is visible at the result address.
	flag, err := s.m.AS.ReadU64(h.resultAddr)
	if err != nil {
		return Result{}, err
	}
	if flag == 0 {
		return Result{}, ErrResultPending
	}
	s.unpinTag(h.tag)
	return Result{
		Found:   r.Found,
		Value:   r.Value,
		Matches: r.Matches,
		Latency: r.Done - h.accepted,
		Err:     r.Fault,
	}, nil
}

// Poll is one non-advancing iteration of the List-2 loop: it checks an
// async query's result without moving the issue clock, returning
// ErrResultPending while the query is still executing at Now(),
// ErrAborted if it was flushed, and the result once complete.
func (s *System) Poll(h AsyncHandle) (Result, error) {
	r, ok := s.accel.Result(h.tag)
	if !ok {
		return Result{}, ErrUnknownHandle
	}
	if r.Aborted {
		s.unpinTag(h.tag)
		return Result{}, fmt.Errorf("qei: query %d: %w", h.tag, ErrAborted)
	}
	if r.Done > s.now {
		return Result{}, ErrResultPending
	}
	s.unpinTag(h.tag)
	return Result{
		Found:   r.Found,
		Value:   r.Value,
		Matches: r.Matches,
		Latency: r.Done - h.accepted,
		Err:     r.Fault,
	}, nil
}

// EnableTracing starts recording one span per query (issue→completion,
// QST instance and slot). ExportTrace renders the spans in Chrome
// tracing JSON (chrome://tracing, Perfetto), making the QST's
// out-of-order overlap visible — the pipelined-CFA picture of Sec. IV-B.
func (s *System) EnableTracing() { s.accel.EnableTracing() }

// ExportTrace returns the recorded trace as a Chrome trace-event JSON
// document. With WithTimeline it renders the unified cycle-stamped
// timeline (every component's events); otherwise it falls back to the
// query-span export driven by EnableTracing/WithQuerySpans.
func (s *System) ExportTrace() string {
	if s.tracer != nil {
		return s.tracer.Export()
	}
	return qei.ExportChromeTrace(s.accel.Spans())
}

// Metric is one named simulator counter, read by Metrics().
type Metric struct {
	// Name is the component-path metric name, e.g. "core0/l1d/misses" or
	// "qei/cmp/remote".
	Name string
	// Value is the counter's reading (fixed-point milli units for the few
	// *_milli metrics).
	Value uint64
}

// Metrics snapshots every registered counter, sorted by name. It
// returns nil unless the system was built WithMetrics.
func (s *System) Metrics() []Metric {
	if s.mreg == nil {
		return nil
	}
	snap := s.mreg.Snapshot()
	out := make([]Metric, 0, len(snap))
	for _, sm := range snap {
		out = append(out, Metric{Name: sm.Name, Value: sm.Value})
	}
	return out
}

// Interrupt models a context-switch interrupt hitting the core
// (Sec. IV-D): the accelerator is flushed, in-flight non-blocking
// queries are aborted with abort codes written to their result
// addresses so software can restart them, and the issue clock advances
// by the flush latency. It returns the number of cycles the flush cost.
func (s *System) Interrupt() uint64 {
	lat := s.accel.Flush(s.now)
	s.now += lat
	return lat
}

// Aborted reports whether an async query was flushed by an interrupt
// before completing; aborted queries should be reissued.
func (s *System) Aborted(h AsyncHandle) bool {
	r, ok := s.accel.Result(h.tag)
	return ok && r.Aborted
}

// Stats summarizes accelerator activity.
type Stats struct {
	Queries        uint64
	Transitions    uint64
	MemLines       uint64
	LocalCompares  uint64
	RemoteCompares uint64
	Exceptions     uint64
	// Retries counts retry-from-root recoveries of transient injected
	// faults; Timeouts counts queries killed by the cycle-budget
	// watchdog (WithQueryCycleBudget).
	Retries  uint64
	Timeouts uint64
	// Occupancy is the average number of busy QST entries over the
	// active window.
	Occupancy float64
}

// Stats returns the accelerator's accumulated activity.
func (s *System) Stats() Stats {
	st := s.accel.Stats()
	return Stats{
		Queries:        st.Queries,
		Transitions:    st.Transitions,
		MemLines:       st.MemLines,
		LocalCompares:  st.LocalCompares,
		RemoteCompares: st.RemoteCompares,
		Exceptions:     st.Exceptions,
		Retries:        st.Retries,
		Timeouts:       st.Timeouts,
		Occupancy:      st.Occupancy(),
	}
}

func (s *System) nextTag() uint64 {
	s.tag++
	return s.tag
}

// ensureGC lazily creates the system's epoch-based reclamation domain
// (internal/epoch). The first mutable build installs it; from then on
// every query pins the current epoch for its in-flight window, writers
// retire freed nodes into the epoch's limbo list, and memory is only
// reused once the QST has drained past the retiring epoch. Read-only
// systems never call this and keep every hook nil.
func (s *System) ensureGC() *epoch.GC {
	if s.gc != nil {
		return s.gc
	}
	s.gc = epoch.New(s.m.AS)
	s.pinnedTags = make(map[uint64]uint64)
	// Reclamation counters live beside the other component metrics
	// (Scoped/RegisterFunc are nil-safe when metrics are off).
	e := s.mreg.Scoped("epoch")
	gc := s.gc
	e.RegisterFunc("current", func() uint64 { return gc.Epoch() })
	e.RegisterFunc("retired", func() uint64 { return gc.Stats().Retired })
	e.RegisterFunc("reclaimed", func() uint64 { return gc.Stats().Reclaimed })
	e.RegisterFunc("reused", func() uint64 { return gc.Stats().Reused })
	e.RegisterFunc("pins_outstanding", func() uint64 { return gc.Stats().PinsOutstanding })
	e.RegisterFunc("read_after_retire", func() uint64 { return gc.Violations() })
	return s.gc
}

// EpochStats snapshots the epoch GC's reclamation counters. It returns
// a zero Stats for a system that never built a mutable table.
func (s *System) EpochStats() epoch.Stats {
	if s.gc == nil {
		return epoch.Stats{}
	}
	return s.gc.Stats()
}

// EpochViolations reports the epoch GC's read-after-retire violation
// count: queries that dereferenced a reclaimed extent. It is asserted
// zero everywhere; a system that never built a mutable table reports 0.
func (s *System) EpochViolations() uint64 {
	if s.gc == nil {
		return 0
	}
	return s.gc.Violations()
}

// pinQuery pins the current epoch on behalf of a query being admitted;
// it is a no-op (returning false) without an epoch domain.
func (s *System) pinQuery() (uint64, bool) {
	if s.gc == nil {
		return 0, false
	}
	return s.gc.Pin(), true
}

// trackPin records an admitted async query's pinned epoch under its tag.
func (s *System) trackPin(tag, pinned uint64) {
	s.pinnedTags[tag] = pinned
}

// unpinTag releases the epoch pinned by an async query, once, when its
// completion (or abort) is observed through Wait or Poll.
func (s *System) unpinTag(tag uint64) {
	if s.gc == nil {
		return
	}
	if e, ok := s.pinnedTags[tag]; ok {
		delete(s.pinnedTags, tag)
		s.gc.Unpin(e)
	}
}
