package qei

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"qei/internal/workload"
)

// queryAll runs the same deterministic query sequence on sys and
// returns the per-query latencies plus the final clock.
func queryAll(t *testing.T, sys *System, keys [][]byte, vals []uint64) ([]uint64, uint64) {
	t.Helper()
	table := sys.MustBuildCuckoo(keys, vals)
	lats := make([]uint64, 0, len(keys))
	for i, k := range keys {
		res, err := sys.Query(table, k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("key %d: %+v want %d", i, res, vals[i])
		}
		lats = append(lats, res.Latency)
	}
	return lats, sys.Now()
}

// TestObservabilityZeroCycleImpact is the CI-enforced zero-overhead
// guard: attaching the metrics registry and the tracer must not change
// a single simulated cycle. Instrumentation observes the timeline; it
// must never participate in it.
func TestObservabilityZeroCycleImpact(t *testing.T) {
	keys, vals := testKeys(300, 16, 11)
	for _, sch := range Schemes() {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			plain := NewSystem(sch)
			observed := NewSystem(sch, WithMetrics(), WithTimeline())
			pl, pn := queryAll(t, plain, keys, vals)
			ol, on := queryAll(t, observed, keys, vals)
			if pn != on {
				t.Fatalf("observability changed the clock: %d vs %d cycles", pn, on)
			}
			for i := range pl {
				if pl[i] != ol[i] {
					t.Fatalf("query %d latency changed: %d vs %d", i, pl[i], ol[i])
				}
			}
		})
	}
}

func TestSystemMetricsReadout(t *testing.T) {
	sys := NewSystem(CoreIntegrated, WithMetrics())
	keys, vals := testKeys(200, 16, 12)
	queryAll(t, sys, keys, vals)

	ms := sys.Metrics()
	if len(ms) == 0 {
		t.Fatal("no metrics from a WithMetrics system")
	}
	byName := map[string]uint64{}
	for i, m := range ms {
		byName[m.Name] = m.Value
		if i > 0 && ms[i-1].Name >= m.Name {
			t.Fatalf("metrics unsorted: %q before %q", ms[i-1].Name, m.Name)
		}
	}
	if byName["qei/queries"] != 200 {
		t.Fatalf("qei/queries = %d, want 200", byName["qei/queries"])
	}
	// The accelerator touched memory through the hierarchy and the page
	// tables through a TLB; those component counters must be live too.
	for _, want := range []string{"qei/cee/transitions", "qei/mem/lines", "dram/accesses"} {
		if byName[want] == 0 {
			t.Fatalf("%s = 0 after 200 queries", want)
		}
	}
	// Systems without the option pay nothing and read nothing.
	if NewSystem(CoreIntegrated).Metrics() != nil {
		t.Fatal("Metrics() non-nil without WithMetrics")
	}
}

func TestSystemUnifiedTraceExport(t *testing.T) {
	sys := NewSystem(CoreIntegrated, WithTimeline())
	keys, vals := testKeys(100, 16, 13)
	queryAll(t, sys, keys, vals)

	doc := sys.ExportTrace()
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty unified trace")
	}
	cats := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		cats[e.Cat] = true
		if e.Ph != "X" && e.Ph != "i" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// One timeline, many components: queries, cache accesses, and page
	// walks must all be present for a cuckoo workload.
	for _, want := range []string{"qst", "cache", "tlb"} {
		if !cats[want] {
			t.Fatalf("category %q missing from unified trace (have %v)", want, cats)
		}
	}
}

// benchTestSet trims the bench matrix to two structurally different
// workloads so the JSON and determinism tests stay fast; RunBench
// itself covers the full set.
func benchTestSet() []workload.Benchmark {
	return []workload.Benchmark{workload.SmallDPDK(), workload.SmallJVM()}
}

// TestBenchJSONRoundTrip validates the qeibench -json schema: the
// written BENCH_*.json decodes back into []BenchResult with cycles and
// speedup per scheme.
func TestBenchJSONRoundTrip(t *testing.T) {
	rs, err := runBenchOn(benchTestSet(), []ExpOption{WithParallelism(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no bench results")
	}
	schemes := map[string]bool{}
	for _, r := range rs {
		if r.Cycles == 0 || r.BaselineCycles == 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		if r.Counters["qei/queries"] == 0 {
			t.Fatalf("record %s/%s lost its counters", r.Workload, r.Scheme)
		}
		schemes[r.Scheme] = true
	}
	if len(schemes) != len(Schemes()) {
		t.Fatalf("results cover %d schemes, want %d", len(schemes), len(Schemes()))
	}

	path, err := WriteBenchJSON(t.TempDir(), "test", rs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_test.json") {
		t.Fatalf("unexpected path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH json does not decode into the result schema: %v", err)
	}
	if len(back) != len(rs) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(rs))
	}
	if back[0].Experiment != "bench" {
		t.Fatalf("experiment name %q", back[0].Experiment)
	}
}

// TestMetricsCollectorParallelDeterminism extends PR 1's byte-identical
// guarantee to metric aggregation: the merged snapshot of a parallel
// run must equal the serial run's exactly.
func TestMetricsCollectorParallelDeterminism(t *testing.T) {
	serial := NewMetricsCollector()
	if _, err := runBenchOn(benchTestSet(), []ExpOption{WithParallelism(1), WithMetricsCollector(serial)}); err != nil {
		t.Fatal(err)
	}
	parallel := NewMetricsCollector()
	if _, err := runBenchOn(benchTestSet(), []ExpOption{WithParallelism(4), WithMetricsCollector(parallel)}); err != nil {
		t.Fatal(err)
	}
	s, p := serial.String(), parallel.String()
	if s == "" {
		t.Fatal("collector saw no metrics")
	}
	if s != p {
		t.Fatalf("merged metrics diverge between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if m := serial.Merged(); len(m) == 0 || m[0].Name == "" {
		t.Fatal("Merged() returned no metrics")
	}
}
