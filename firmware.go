package qei

import (
	"fmt"

	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/mem"
)

// Firmware extension API. The CEE is microcoded: new data-structure
// types install as firmware without hardware changes (Sec. IV-B). This
// file re-exports the CFA vocabulary so applications can define their
// own query automata against the public API and register them on a
// System — see examples/lpm_router for a complete longest-prefix-match
// routing table added this way.

// Firmware is a CFA program: the microcode for one data-structure type.
// Implementations provide a type code (the header's type byte), a state
// count (≤ 254), and a Step function mapping (query, state) to the
// micro-operations of the transition and the next state.
type Firmware = cfa.Program

// FirmwareQuery is the per-query context handed to Step: the parsed
// header, the staged key, simulated-memory access for functional reads,
// and scratch cursor fields (Node, AltNode, Level, Pos) that live in the
// QST entry's intermediate-data field.
type FirmwareQuery = cfa.Query

// FirmwareRequest is a transition's outcome.
type FirmwareRequest = cfa.Request

// FirmwareState identifies a CFA state (one byte in the QST).
type FirmwareState = cfa.StateID

// Addr is a virtual address in the simulated address space — the type of
// FirmwareQuery's Node/AltNode cursor fields and of every pointer stored
// inside simulated structures.
type Addr = mem.VAddr

// FirmwareOp is one micro-operation of the DPU vocabulary.
type FirmwareOp = cfa.Op

// Reserved firmware states.
const (
	// FirmwareStart is the entry state.
	FirmwareStart = cfa.StateStart
	// FirmwareDone and FirmwareException are terminal.
	FirmwareDone      = cfa.StateDone
	FirmwareException = cfa.StateException
)

// FirmwareMemRead builds a memory micro-op covering [addr, addr+bytes).
func FirmwareMemRead(addr, bytes uint64) FirmwareOp {
	return cfa.MemRead(mem.VAddr(addr), bytes)
}

// FirmwareCompare builds a comparison micro-op over bytes at addr.
func FirmwareCompare(addr, bytes uint64) FirmwareOp {
	return cfa.Compare(mem.VAddr(addr), bytes)
}

// FirmwareALU builds an arithmetic micro-op of the given width.
func FirmwareALU(bytes uint64) FirmwareOp { return cfa.ALU(bytes) }

// FirmwareHash builds a hashing-unit micro-op over bytes of key.
func FirmwareHash(bytes uint64) FirmwareOp { return cfa.HashOp(bytes) }

// FirmwareContinue builds a non-terminal transition outcome.
func FirmwareContinue(next FirmwareState, parallel bool, ops ...FirmwareOp) FirmwareRequest {
	return cfa.Continue(next, parallel, ops...)
}

// FirmwareFinish builds a successful terminal outcome.
func FirmwareFinish(found bool, value uint64, ops ...FirmwareOp) FirmwareRequest {
	return cfa.Finish(found, value, ops...)
}

// FirmwareFail builds an exception outcome (Sec. IV-D).
func FirmwareFail(err error) FirmwareRequest { return cfa.Fail(err) }

// RegisterFirmware installs a new CFA on this system's CEE after the
// full admission pass: the hardware constraints (≤ 254 states, non-zero
// type code), a collision check against everything already installed —
// including the built-in programs, which firmware must not silently
// shadow — and the behavioral validation probe (the program must drive
// a minimal structure to FirmwareDone within hardware bounds). Every
// rejection wraps ErrFirmwareInvalid. Queries against headers carrying
// the firmware's type code execute it.
func (s *System) RegisterFirmware(p Firmware) error {
	if existing, ok := s.reg.Lookup(p.TypeCode()); ok {
		return fmt.Errorf("%w: type code %d already serves %q", ErrFirmwareInvalid,
			p.TypeCode(), existing.Name())
	}
	if err := cfa.ValidateProgramDeep(p); err != nil {
		return err
	}
	return s.reg.Register(p)
}

// WriteTableHeader lays out a Fig. 4 metadata header for a
// custom-firmware structure whose body the application built with Write,
// and returns a KindCustom Table handle for Query. label names the
// structure for diagnostics (Table.Name reports it); typeCode selects
// the firmware; root points at the structure; keyLen is the stored key
// length; aux and aux2 are firmware-specific parameters.
func (s *System) WriteTableHeader(label string, typeCode uint8, root uint64, keyLen int, size, aux, aux2 uint64) (Table, error) {
	if typeCode == 0 {
		return Table{}, fmt.Errorf("qei: type code 0 is reserved")
	}
	if keyLen <= 0 || keyLen > 0xffff {
		return Table{}, fmt.Errorf("qei: key length %d out of range", keyLen)
	}
	hdr := dstruct.WriteHeader(s.m.AS, dstruct.Header{
		Root:   mem.VAddr(root),
		Type:   typeCode,
		KeyLen: uint16(keyLen),
		Size:   size,
		Aux:    aux,
		Aux2:   aux2,
	})
	return Table{header: hdr, Kind: KindCustom, Label: label, KeyLen: keyLen}, nil
}

// ValidateFirmware runs the same admission pass RegisterFirmware
// applies (minus the registry collision check, which needs a System):
// static hardware constraints plus the behavioral probe proving the
// program reaches FirmwareDone on a minimal structure within bounded
// transitions and micro-op sizes. Rejections wrap ErrFirmwareInvalid.
func ValidateFirmware(p Firmware) error { return cfa.ValidateProgramDeep(p) }
