package qei

// Robustness tests for the fault-injection harness and the recovery
// machinery behind it: the zero-cycle-impact guarantee when injection
// is disabled, the chaos soak over every structure kind, the software
// fallback policy, and the public cycle-budget watchdog.

import (
	"errors"
	"fmt"
	"testing"
)

// TestFaultInjectionZeroCycleImpact is the CI-enforced guard for the
// robustness layer: a system carrying the full fault-injection +
// watchdog + fallback apparatus with every rate at zero must produce
// the exact same simulated timeline as a plain system. Recovery
// machinery observes the query; it must never tax it.
func TestFaultInjectionZeroCycleImpact(t *testing.T) {
	keys, vals := testKeys(300, 16, 11)
	zero := MustParseFaultSpec("9:flip=0,nocdelay=0,nocdrop=0,shootdown=0,spurious=0,evict=0")
	if zero.Enabled() {
		t.Fatal("all-zero spec reports Enabled")
	}
	for _, sch := range Schemes() {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			plain := NewSystem(sch)
			armed := NewSystem(sch,
				WithFaultInjection(zero),
				WithQueryCycleBudget(1<<60),
				WithFallback(FallbackPolicy{AfterFaults: 2}))
			pl, pn := queryAll(t, plain, keys, vals)
			al, an := queryAll(t, armed, keys, vals)
			if pn != an {
				t.Fatalf("disabled fault injection changed the clock: %d vs %d cycles", pn, an)
			}
			for i := range pl {
				if pl[i] != al[i] {
					t.Fatalf("query %d latency changed: %d vs %d", i, pl[i], al[i])
				}
			}
			if armed.FaultsInjected() != 0 || armed.Fallbacks() != 0 {
				t.Fatalf("zero-rate system injected %d faults, %d fallbacks",
					armed.FaultsInjected(), armed.Fallbacks())
			}
		})
	}
}

// chaosOutcome classifies a blocking query's architectural ending.
type chaosOutcome struct{ ok, fault, fellBack int }

func (c chaosOutcome) total() int { return c.ok + c.fault + c.fellBack }

// chaosRun drives a randomized fault schedule across all five built-in
// structure kinds and returns the outcome tally plus a byte-exact
// rendering of the metrics snapshot for replay comparison.
func chaosRun(t *testing.T, spec string) (chaosOutcome, string) {
	t.Helper()
	sys := NewSystem(CoreIntegrated,
		WithMetrics(),
		WithFaultInjection(MustParseFaultSpec(spec)),
		WithQueryCycleBudget(2_000_000),
		WithFallback(FallbackPolicy{AfterFaults: 2}))

	keys, vals := testKeys(48, 16, 31)
	absent, _ := testKeys(8, 16, 32)
	build := []func() (Table, error){
		func() (Table, error) { return sys.BuildLinkedList(keys, vals) },
		func() (Table, error) { return sys.BuildCuckoo(keys, vals) },
		func() (Table, error) { return sys.BuildSkipList(keys, vals) },
		func() (Table, error) { return sys.BuildBST(keys, vals, 0) },
	}

	var out chaosOutcome
	classify := func(res Result, err error) {
		if err != nil {
			t.Fatalf("blocking query escaped the architectural interface: %v", err)
		}
		switch {
		case res.FellBack:
			out.fellBack++
		case res.Err != nil:
			out.fault++
		default:
			out.ok++
		}
	}

	for _, b := range build {
		table, err := b()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			classify(sys.Query(table, k))
		}
		for _, k := range absent {
			classify(sys.Query(table, k))
		}
	}

	// Fifth kind: the Aho-Corasick trie, driven through Scan.
	kws := [][]byte{[]byte("fault"), []byte("inject"), []byte("chaos"), []byte("soak")}
	trie, err := sys.BuildTrie(kws, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte("a chaos soak injects faults into every layer"),
		[]byte("no keyword here at all"),
		[]byte("faultfaultfault"),
	}
	for _, in := range inputs {
		classify(sys.Scan(trie, in))
	}

	if got := int(sys.Fallbacks()); got != out.fellBack {
		t.Fatalf("Fallbacks() = %d but %d results carried FellBack", got, out.fellBack)
	}
	return out, fmt.Sprintf("%+v", sys.Metrics())
}

// TestChaosSoak throws randomized-but-replayable fault schedules at all
// five structure kinds and asserts the architectural contract: no panic
// escapes System, every blocking query ends in exactly one of
// {accelerator result, architectural fault, fallback result}, and an
// identical seed replays to a byte-identical metrics snapshot.
func TestChaosSoak(t *testing.T) {
	specs := []string{
		"101:flip=0.02,nocdelay=0.05,nocdrop=0.02,shootdown=0.05,spurious=0.02,evict=0.05",
		"202:flip=0.1,spurious=0.05",
		"303:nocdrop=0.2,shootdown=0.2,evict=0.2",
		"404:flip=0.3,nocdelay=0.3,nocdrop=0.3,shootdown=0.3,spurious=0.3,evict=0.3",
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			out, snap := chaosRun(t, spec)
			if out.total() == 0 {
				t.Fatal("soak ran no queries")
			}
			out2, snap2 := chaosRun(t, spec)
			if out != out2 {
				t.Fatalf("same seed, different outcomes: %+v vs %+v", out, out2)
			}
			if snap != snap2 {
				t.Fatalf("same seed, different metrics snapshots:\n%s\nvs\n%s", snap, snap2)
			}
			t.Logf("outcomes: %+v", out)
		})
	}
}

// TestFallbackPolicy forces every accelerator execution to fault
// (spurious rate 1) and checks the software path serves every query
// with correct answers, FellBack set, and the fallback counter and
// metric in agreement.
func TestFallbackPolicy(t *testing.T) {
	sys := NewSystem(CoreIntegrated,
		WithMetrics(),
		WithFaultInjection(MustParseFaultSpec("3:spurious=1")),
		WithFallback(FallbackPolicy{AfterFaults: 1}))
	keys, vals := testKeys(32, 16, 41)
	table := sys.MustBuildCuckoo(keys, vals)
	for i, k := range keys {
		res, err := sys.Query(table, k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.FellBack {
			t.Fatalf("query %d did not fall back under spurious=1", i)
		}
		if res.Err != nil {
			t.Fatalf("query %d fallback errored: %v", i, res.Err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("query %d fallback result %+v, want value %d", i, res, vals[i])
		}
		if res.Latency == 0 {
			t.Fatalf("query %d fallback reported zero latency", i)
		}
	}
	n := uint64(len(keys))
	if sys.Fallbacks() != n {
		t.Fatalf("Fallbacks() = %d, want %d", sys.Fallbacks(), n)
	}
	var metric uint64
	for _, m := range sys.Metrics() {
		if m.Name == "qei/fallback_total" {
			metric = m.Value
		}
	}
	if metric != n {
		t.Fatalf("qei/fallback_total = %d, want %d", metric, n)
	}
	st := sys.Stats()
	if st.Exceptions != n {
		t.Fatalf("Exceptions = %d, want %d (one final fault per query)", st.Exceptions, n)
	}
	if st.Retries == 0 {
		t.Fatal("no transient retries recorded under spurious=1")
	}
}

// TestPublicWatchdogTimeout exercises WithQueryCycleBudget through the
// public API: a miss that walks a long linked list end to end blows the
// budget and surfaces ErrQueryTimeout; a front-of-list hit fits.
func TestPublicWatchdogTimeout(t *testing.T) {
	sys := NewSystem(CoreIntegrated, WithQueryCycleBudget(3000))
	keys, vals := testKeys(400, 16, 51)
	table, err := sys.BuildLinkedList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(table, keys[0])
	if err != nil || res.Err != nil {
		t.Fatalf("front-of-list hit failed under budget: %v / %v", err, res.Err)
	}
	absent := make([]byte, 16)
	res, err = sys.Query(table, absent)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrQueryTimeout) {
		t.Fatalf("full-list miss returned %v, want ErrQueryTimeout", res.Err)
	}
	if st := sys.Stats(); st.Timeouts != 1 {
		t.Fatalf("Stats().Timeouts = %d, want 1", st.Timeouts)
	}
}
