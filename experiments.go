package qei

import (
	"context"
	"fmt"
	"strings"

	"qei/internal/hwdesc"
	"qei/internal/power"
	"qei/internal/scheme"
	"qei/internal/stats"
	"qei/internal/workload"
)

// Scale selects experiment sizing: Small for quick runs and tests, Full
// for the paper-scale configurations of Sec. VI-B.
type Scale int

const (
	// Small shrinks structure populations and query counts for fast runs.
	Small Scale = iota
	// FullScale uses the paper's structure sizes.
	FullScale
)

func benchesFor(s Scale) []workload.Benchmark {
	if s == FullScale {
		return workload.All()
	}
	return workload.AllSmall()
}

// TableData is a rendered experiment result: structured rows plus a
// preformatted text table.
type TableData struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t TableData) String() string {
	tab := stats.NewTable(t.Title, t.Headers...)
	for _, r := range t.Rows {
		cells := make([]any, len(r))
		for i, c := range r {
			cells[i] = c
		}
		tab.AddRow(cells...)
	}
	return tab.String()
}

// CSV renders the table as comma-separated values, escaping cells per
// RFC 4180 (several titles and scheme notes contain commas).
func (t TableData) CSV() string {
	var b strings.Builder
	b.WriteString(stats.CSVRow(t.Headers))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(stats.CSVRow(r))
		b.WriteByte('\n')
	}
	return b.String()
}

func f(format string, v ...any) string { return fmt.Sprintf(format, v...) }

// Fig1QueryTimeShare reproduces Fig. 1: the percentage of CPU time spent
// in data-query operations for each workload (paper band: 23%–44%).
func Fig1QueryTimeShare(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 1 — query share of CPU time (paper: 23%-44%)",
		Headers: []string{"workload", "query_share_pct"},
	}
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			share, err := workload.ROIShare(b)
			if err != nil {
				return nil, err
			}
			return [][]string{{b.Name(), f("%.1f", share*100)}}, nil
		})
	t.Rows = rows
	return t, err
}

// TabI reproduces Table I: the qualitative comparison of integration
// schemes.
func TabI() TableData {
	t := TableData{
		Title: "Tab. I — comparison of integration schemes",
		Headers: []string{"scheme", "accel-core_cyc", "accel-data_cyc", "hw_cost",
			"mem_mgmt", "noc_hotspot", "private$_pollution", "scalability"},
	}
	for _, r := range scheme.TableI() {
		t.Rows = append(t.Rows, []string{
			r.Scheme, r.AccelCoreCycles, r.AccelDataCycles, r.HardwareCost,
			r.MemMgmt, r.NoCHotspot, r.PrivatePollute, r.Scalability,
		})
	}
	return t
}

// TabII reproduces Table II: the simulated CPU configuration.
func TabII() TableData {
	t := TableData{
		Title:   "Tab. II — simulated CPU model configuration",
		Headers: []string{"item", "configuration"},
	}
	rows := [][2]string{
		{"Cores", "24 OoO cores, 2.5 GHz"},
		{"Caches", "8-way 32KB L1D/L1I, 16-way 1MB L2, 11-way 33MB shared LLC (24 slices)"},
		{"LQ/SQ/ROB entries", "72/56/224"},
		{"Memory controllers", "6 DDR4-2666 channels"},
		{"QEI accelerator", "five ALUs per DPU; two comparators per CHA (CHA/Core-integrated); ten per DPU (Device)"},
		{"NoC", "6x4 mesh, XY routing"},
		{"Process", "22 nm"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r[0], r[1]})
	}
	return t
}

// roiCycles computes the in-context ROI cycle count of a run pair: the
// full run minus the non-ROI-only run of the same benchmark (the paper's
// "performance improvement of such ROIs", Sec. VI-B).
func roiCycles(full, nonROI uint64) uint64 {
	if full <= nonROI {
		return 1
	}
	return full - nonROI
}

// Fig7Speedup reproduces Fig. 7: per-workload lookup speedup of every
// integration scheme over the software baseline.
func Fig7Speedup(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 7 — speedup of lookup operations (paper: 6.5x-11.2x, CHA-TLB up to 12.7x)",
		Headers: []string{"workload", "scheme", "speedup_x"},
	}
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			sw, err := workload.RunBaseline(b, workload.Full, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			non, err := workload.RunBaseline(b, workload.NonROIOnly, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			swROI := roiCycles(sw.Cycles, non.Cycles)
			var rows [][]string
			for _, k := range scheme.Kinds() {
				hw, err := workload.RunQEI(b, k, workload.Full, workload.WithWarmup())
				if err != nil {
					return nil, err
				}
				if hw.Mismatches != 0 {
					return nil, fmt.Errorf("qei: %s/%s produced %d wrong results", b.Name(), k, hw.Mismatches)
				}
				sp := float64(swROI) / float64(roiCycles(hw.Cycles, non.Cycles))
				rows = append(rows, []string{b.Name(), k.String(), f("%.2f", sp)})
			}
			return rows, nil
		})
	t.Rows = rows
	return t, err
}

// Fig8LatencySweep reproduces Fig. 8: the Device-indirect scheme's
// sensitivity to the accelerator's data-access latency (50–2000 cycles).
func Fig8LatencySweep(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 8 — Device-indirect latency sensitivity",
		Headers: []string{"workload", "access_latency_cyc", "speedup_x"},
	}
	latencies := []uint64{50, 100, 300, 600, 1000, 2000}
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			sw, err := workload.RunBaseline(b, workload.Full, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			non, err := workload.RunBaseline(b, workload.NonROIOnly, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			swROI := roiCycles(sw.Cycles, non.Cycles)
			var rows [][]string
			for _, lat := range latencies {
				hw, err := workload.RunQEIWithParams(b, deviceIndirectWith(lat), workload.Full, workload.WithWarmup())
				if err != nil {
					return nil, err
				}
				sp := float64(swROI) / float64(roiCycles(hw.Cycles, non.Cycles))
				rows = append(rows, []string{b.Name(), f("%d", lat), f("%.2f", sp)})
			}
			return rows, nil
		})
	t.Rows = rows
	return t, err
}

// deviceIndirectWith materializes the Tab. II Device-indirect machine at
// the given device-interface data latency — the Fig. 8 sweep axis
// expressed as a named hwdesc description rather than parameter surgery
// (hwdesc tests pin the materialization to the former literals).
func deviceIndirectWith(lat uint64) scheme.Params {
	p, err := hwdesc.ForScheme(scheme.DeviceIndirect).WithDataLatency(lat).SchemeParams()
	if err != nil {
		panic(err) // unreachable: the preset validates
	}
	return p
}

// Fig9EndToEnd reproduces Fig. 9: end-to-end query/packet-per-second
// improvement of the full applications (paper: 36.2%–66.7%).
func Fig9EndToEnd(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 9 — end-to-end throughput improvement (paper: 36.2%-66.7%)",
		Headers: []string{"workload", "scheme", "improvement_pct"},
	}
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			sw, err := workload.RunBaseline(b, workload.Full, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			var rows [][]string
			for _, k := range []scheme.Kind{scheme.CHATLB, scheme.CHANoTLB, scheme.CoreIntegrated} {
				hw, err := workload.RunQEI(b, k, workload.Full, workload.WithWarmup())
				if err != nil {
					return nil, err
				}
				imp := (float64(sw.Cycles)/float64(hw.Cycles) - 1) * 100
				rows = append(rows, []string{b.Name(), k.String(), f("%.1f", imp)})
			}
			return rows, nil
		})
	t.Rows = rows
	return t, err
}

// Fig10TupleSpace reproduces Fig. 10: tuple-space search with QUERY_NB
// over 5/10/15 tuples, per scheme.
func Fig10TupleSpace(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 10 — tuple-space search speedup with QUERY_NB",
		Headers: []string{"tuples", "scheme", "speedup_x"},
	}
	// QUERY_NB issue batch: large enough to keep every QST busy across
	// schemes (the device DPU has 240 entries; the software poll loop is
	// sized to this).
	const nbBatch = 32
	rows, err := expRows(expConfigFor(opts), []int{5, 10, 15},
		func(_ context.Context, _ int, tuples int) ([][]string, error) {
			var b workload.Benchmark
			if s == FullScale {
				b = workload.DefaultTupleSpace(tuples)
			} else {
				b = workload.SmallTupleSpace(tuples)
			}
			sw, err := workload.RunBaseline(b, workload.Full, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			var rows [][]string
			for _, k := range scheme.Kinds() {
				hw, err := workload.RunQEINonBlocking(b, k, nbBatch, workload.WithWarmup())
				if err != nil {
					return nil, err
				}
				if hw.Mismatches != 0 {
					return nil, fmt.Errorf("qei: tuple-%d/%s produced %d wrong results", tuples, k, hw.Mismatches)
				}
				sp := float64(sw.Cycles) / float64(hw.Cycles)
				rows = append(rows, []string{f("%d", tuples), k.String(), f("%.2f", sp)})
			}
			return rows, nil
		})
	t.Rows = rows
	return t, err
}

// Fig11InstrReduction reproduces Fig. 11: dynamic instructions executed
// by the core in the ROI, software vs QEI.
func Fig11InstrReduction(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 11 — dynamic instruction count in ROIs",
		Headers: []string{"workload", "software_instrs", "qei_instrs", "reduction_pct"},
	}
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			sw, err := workload.RunBaseline(b, workload.ROIOnly)
			if err != nil {
				return nil, err
			}
			hw, err := workload.RunQEI(b, scheme.CoreIntegrated, workload.ROIOnly)
			if err != nil {
				return nil, err
			}
			red := (1 - float64(hw.Core.Instructions)/float64(sw.Core.Instructions)) * 100
			return [][]string{{
				b.Name(),
				f("%d", sw.Core.Instructions),
				f("%d", hw.Core.Instructions),
				f("%.1f", red),
			}}, nil
		})
	t.Rows = rows
	return t, err
}

// TabIII reproduces Table III: area and static power of the three QEI
// configurations at 22 nm.
func TabIII() TableData {
	t := TableData{
		Title:   "Tab. III — area and static power of QEI",
		Headers: []string{"configuration", "area_mm2", "paper_mm2", "static_mW", "paper_mW"},
	}
	for _, r := range hwdesc.Default().PowerModel().TableIII() {
		t.Rows = append(t.Rows, []string{
			r.Config,
			f("%.4f", r.AreaMM2), f("%.4f", r.PaperAreaMM2),
			f("%.4f", r.StaticMW), f("%.4f", r.PaperStaticMW),
		})
	}
	return t
}

// Fig12DynamicPower reproduces Fig. 12: QEI's per-query dynamic energy
// relative to the software baseline (paper: >60% reduction).
func Fig12DynamicPower(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Fig. 12 — QEI dynamic energy per query vs software (paper: <40%)",
		Headers: []string{"workload", "scheme", "energy_pct_of_software"},
	}
	model := hwdesc.Default().PowerModel()
	rows, err := expRows(expConfigFor(opts), benchesFor(s),
		func(_ context.Context, _ int, b workload.Benchmark) ([][]string, error) {
			sw, err := workload.RunBaseline(b, workload.ROIOnly, workload.WithWarmup())
			if err != nil {
				return nil, err
			}
			swE := model.DynamicEnergyNJ(power.Activity{
				Instructions: sw.Core.Instructions,
				Mispredicts:  sw.Core.Mispredicts,
				L1Accesses:   sw.L1Accesses,
				L2Accesses:   sw.L2Accesses,
				LLCAccesses:  sw.LLCAccesses,
				DRAMAccesses: sw.DRAMAccesses,
				NoCBytes:     sw.NoCBytes,
				TLBLookups:   sw.TLBLookups,
				PageWalks:    sw.PageWalks,
			}) / float64(sw.Queries)
			var rows [][]string
			for _, k := range []scheme.Kind{scheme.CHATLB, scheme.CHANoTLB, scheme.DeviceDirect, scheme.DeviceIndirect, scheme.CoreIntegrated} {
				hw, err := workload.RunQEI(b, k, workload.ROIOnly, workload.WithWarmup())
				if err != nil {
					return nil, err
				}
				// Lines streamed by CHA comparators are cheaper than full
				// LLC accesses; split them out of the LLC count.
				cmpLines := hw.Accel.CompareBytes / 64
				llc := hw.LLCAccesses
				if cmpLines > llc {
					cmpLines = llc
				}
				hwE := model.DynamicEnergyNJ(power.Activity{
					Instructions:        hw.Core.Instructions,
					Mispredicts:         hw.Core.Mispredicts,
					Transitions:         hw.Accel.Transitions,
					Compare8Bs:          (hw.Accel.CompareBytes + 7) / 8,
					ComparatorLineReads: cmpLines,
					Hash8Bs:             hw.Accel.HashOps * 2,
					L1Accesses:          hw.L1Accesses,
					L2Accesses:          hw.L2Accesses,
					LLCAccesses:         llc - cmpLines,
					DRAMAccesses:        hw.DRAMAccesses,
					NoCBytes:            hw.NoCBytes,
					TLBLookups:          hw.TLBLookups,
					PageWalks:           hw.PageWalks,
				}) / float64(hw.Queries)
				rows = append(rows, []string{b.Name(), k.String(), f("%.1f", hwE/swE*100)})
			}
			return rows, nil
		})
	t.Rows = rows
	return t, err
}

// TailLatency runs the open-loop latency study (an extension of the
// paper's Sec. II-B QoS argument): queries arrive at a fixed rate and
// per-query latency percentiles are recorded. Device schemes show their
// long access latency directly in the distribution; overload pushes the
// tail out for every scheme.
func TailLatency(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Extension — open-loop query latency (cycles)",
		Headers: []string{"scheme", "interarrival", "avg", "p50", "p95", "p99"},
	}
	var b workload.Benchmark = workload.SmallDPDK()
	queries := 150
	if s == FullScale {
		b = workload.DefaultDPDK()
		queries = 1000
	}
	type point struct {
		k   scheme.Kind
		gap uint64
	}
	var points []point
	for _, k := range []scheme.Kind{scheme.CoreIntegrated, scheme.CHATLB, scheme.DeviceIndirect} {
		for _, gap := range []uint64{2000, 200, 20} {
			points = append(points, point{k, gap})
		}
	}
	rows, err := expRows(expConfigFor(opts), points,
		func(_ context.Context, _ int, pt point) ([][]string, error) {
			p, err := workload.OpenLoopLatency(b, pt.k, pt.gap, queries)
			if err != nil {
				return nil, err
			}
			return [][]string{{
				pt.k.String(), f("%d", pt.gap), f("%.0f", p.AvgLatency),
				f("%d", p.P50), f("%d", p.P95), f("%d", p.P99),
			}}, nil
		})
	t.Rows = rows
	return t, err
}

// Scalability runs the multi-core study behind Tab. I's Scalability
// column: the same aggregate query stream split across 1/2/4/8 cores.
// Core-integrated accelerators are private per core; CHA schemes share
// 24 distributed instances; device schemes funnel into one accelerator.
func Scalability(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Tab. I scalability — aggregate throughput (queries/kilocycle)",
		Headers: []string{"scheme", "cores", "throughput_q_per_kcyc"},
	}
	var b workload.Benchmark = workload.SmallDPDK()
	if s == FullScale {
		b = workload.DefaultDPDK()
	}
	type point struct {
		k     scheme.Kind
		cores int
	}
	var points []point
	for _, k := range []scheme.Kind{scheme.CoreIntegrated, scheme.CHATLB, scheme.DeviceDirect, scheme.DeviceIndirect} {
		for _, cores := range []int{1, 2, 4, 8} {
			points = append(points, point{k, cores})
		}
	}
	rows, err := expRows(expConfigFor(opts), points,
		func(_ context.Context, _ int, pt point) ([][]string, error) {
			r, err := workload.RunMultiCore(b, pt.k, pt.cores)
			if err != nil {
				return nil, err
			}
			if r.Mismatches != 0 {
				return nil, fmt.Errorf("qei: scalability %s/%d produced %d wrong results", pt.k, pt.cores, r.Mismatches)
			}
			return [][]string{{pt.k.String(), f("%d", pt.cores), f("%.2f", r.Throughput)}}, nil
		})
	t.Rows = rows
	return t, err
}

// NoCUtilization checks the Sec. V claim that one QEI accelerator can
// saturate a meaningful share (~8%) of the mesh NoC bandwidth.
func NoCUtilization(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title:   "Sec. V — NoC bandwidth utilization of one QEI accelerator",
		Headers: []string{"workload", "scheme", "peak_link_util_pct", "mean_util_pct"},
	}
	var b workload.Benchmark = workload.SmallFLANN()
	if s == FullScale {
		b = workload.DefaultFLANN()
	}
	rows, err := expRows(expConfigFor(opts),
		[]scheme.Kind{scheme.CoreIntegrated, scheme.DeviceIndirect},
		func(_ context.Context, _ int, k scheme.Kind) ([][]string, error) {
			hw, err := workload.RunQEIUtilization(b, k)
			if err != nil {
				return nil, err
			}
			return [][]string{{b.Name(), k.String(),
				f("%.1f", hw.PeakLinkUtil*100), f("%.1f", hw.MeanUtil*100)}}, nil
		})
	t.Rows = rows
	return t, err
}
