package qei

import (
	"context"
	"fmt"

	"qei/internal/dse"
	"qei/internal/hwdesc"
)

// DSEConfig describes one design-space-exploration sweep: a base
// machine, an axis grid mutating it, and the workload every resulting
// design point is scored on.
type DSEConfig struct {
	// Workload names the benchmark driving the sweep: "dpdk" (default),
	// "jvm", "rocksdb", "snort", or "flann".
	Workload string
	// FullScale uses the paper-scale benchmark population; the default
	// is the small, fast one.
	FullScale bool
	// Axes is the compact grid spec, e.g.
	// "qst=8,16,32,64;cores=8,16,24;mesh=6x4,4x4;scheme=core,cha-tlb;node=22,7".
	// Empty means the standard 120-point provisioning grid.
	Axes string
	// Base is a preset name or JSON file path for the description the
	// axes mutate; empty means the Tab. II default.
	Base string
	// Parallelism is the sweep's worker count (<= 0 means GOMAXPROCS,
	// 1 forces the serial path). Results are byte-identical at any value.
	Parallelism int
}

// DSEResult is a completed sweep: every evaluated design point in grid
// order, the indices of the Pareto frontier over (speedup, area, energy
// per query), and the counts of dominated and skipped-invalid points.
type DSEResult = dse.Result

// DSEPoint is one evaluated design point of a sweep.
type DSEPoint = dse.Point

// RunDSE expands the sweep grid and evaluates every valid design point
// on its own simulated machine: software baseline vs QEI on the same
// chip (baselines shared across points that differ only in accelerator
// sizing), scored on lookup speedup, total accelerator silicon, and
// dynamic energy per query. Bad axis specs, presets, and descriptions
// fail with errors wrapping ErrBadConfig.
func RunDSE(ctx context.Context, cfg DSEConfig) (*DSEResult, error) {
	axes := dse.DefaultAxes()
	if cfg.Axes != "" {
		var err error
		axes, err = dse.ParseAxes(cfg.Axes)
		if err != nil {
			return nil, err
		}
	}
	base := hwdesc.Default()
	if cfg.Base != "" {
		var err error
		base, err = hwdesc.Load(cfg.Base)
		if err != nil {
			return nil, err
		}
	}
	return dse.Sweep(ctx, dse.Config{
		Workload:    cfg.Workload,
		FullScale:   cfg.FullScale,
		Base:        base,
		Axes:        axes,
		Parallelism: cfg.Parallelism,
	})
}

// DSEFrontier is the "dse" experiment: a design-space sweep over QST
// capacity, core count, and integration scheme on the DPDK workload,
// reporting every design point with its three objective scores and its
// Pareto verdict. Small scale sweeps an 8-point grid; FullScale runs
// the standard 120-point provisioning grid.
func DSEFrontier(s Scale, opts ...ExpOption) (TableData, error) {
	t := TableData{
		Title: "DSE — Pareto frontier over (speedup, area, energy/query)",
		Headers: []string{"design", "speedup_x", "area_mm2", "static_mw",
			"energy_nj_per_query", "pareto"},
	}
	cfg := expConfigFor(opts)
	axes := "qst=8,32;cores=16,24;scheme=core,cha-tlb"
	if s == FullScale {
		axes = "" // the standard 120-point grid
	}
	res, err := RunDSE(cfg.ctx, DSEConfig{
		Workload:    "dpdk",
		FullScale:   s == FullScale,
		Axes:        axes,
		Parallelism: cfg.par,
	})
	if err != nil {
		return t, err
	}
	for _, p := range res.Points {
		verdict := "frontier"
		if p.Dominated {
			verdict = "dominated"
		}
		t.Rows = append(t.Rows, []string{
			p.Desc.Name,
			f("%.2f", p.SpeedupX),
			f("%.4f", p.AreaMM2),
			f("%.4f", p.StaticMW),
			f("%.2f", p.EnergyNJPerQuery),
			verdict,
		})
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("TOTAL %d points (%d dominated, %d invalid cells skipped)",
			len(res.Points), res.DominatedCount, res.SkippedInvalid),
		"", "", "", "", f("%d", len(res.Frontier)),
	})
	return t, nil
}
