package qei

// Shape tests: the paper's qualitative claims, asserted on the
// small-scale experiment runs. These are the guardrails that keep the
// reproduction honest — each test states the claim it checks.

import (
	"strconv"
	"testing"
)

func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[i], err)
	}
	return v
}

// find returns the numeric value in col valueCol of the first row whose
// leading columns match the given keys.
func find(t *testing.T, td TableData, valueCol int, keys ...string) float64 {
	t.Helper()
	for _, r := range td.Rows {
		ok := true
		for i, k := range keys {
			if r[i] != k {
				ok = false
				break
			}
		}
		if ok {
			return cell(t, r, valueCol)
		}
	}
	t.Fatalf("row %v not found in %s", keys, td.Title)
	return 0
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := Fig7Speedup(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 25 {
		t.Fatalf("Fig7 rows = %d, want 25 (5 workloads x 5 schemes)", len(td.Rows))
	}
	for _, wl := range []string{"DPDK", "JVM", "RocksDB", "Snort", "FLANN"} {
		chaT := find(t, td, 2, wl, "CHA-TLB")
		devI := find(t, td, 2, wl, "Device-indirect")
		core := find(t, td, 2, wl, "Core-integrated")

		// Claim: every integrated scheme beats software.
		if chaT <= 1 || core <= 1 {
			t.Errorf("%s: integrated schemes must beat software (chaT=%.2f core=%.2f)", wl, chaT, core)
		}
		// Claim: Device-indirect is the weakest scheme.
		if devI >= chaT || devI >= core {
			t.Errorf("%s: Device-indirect (%.2f) should trail CHA-TLB (%.2f) and Core-integrated (%.2f)",
				wl, devI, chaT, core)
		}
		// Claim: Core-integrated is competitive with CHA-TLB (the paper's
		// gap is 0.9%-15%). Small-scale structures partially fit the L2
		// that Core-integrated shares, inflating its advantage (Snort's
		// 2MB test trie especially), so allow a loose 3x band here; the
		// full-scale EXPERIMENTS.md runs show the tight grouping.
		if core < chaT/2 || core > chaT*3 {
			t.Errorf("%s: Core-integrated (%.2f) should be in CHA-TLB's neighbourhood (%.2f)", wl, core, chaT)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := Fig8LatencySweep(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Claim: speedup degrades monotonically (within noise) as the device
	// interface latency grows, for every workload.
	for _, wl := range []string{"DPDK", "JVM", "RocksDB", "Snort", "FLANN"} {
		at50 := find(t, td, 2, wl, "50")
		at2000 := find(t, td, 2, wl, "2000")
		if at2000 >= at50 {
			t.Errorf("%s: speedup at 2000 cycles (%.2f) should be below 50 cycles (%.2f)", wl, at2000, at50)
		}
	}
}

func TestFig9Band(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := Fig9EndToEnd(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Claim: integrated schemes improve end-to-end throughput. The paper
	// band is 36.2%-66.7% at full scale; small-scale structures are
	// cache-friendly, so the warm query share (and with it the Amdahl
	// headroom) shrinks — accept any clearly positive improvement here
	// and check the paper band in EXPERIMENTS.md's full-scale runs.
	for _, r := range td.Rows {
		imp := cell(t, r, 2)
		if imp < 3 || imp > 200 {
			t.Errorf("%s/%s end-to-end improvement %.1f%% outside plausible band", r[0], r[1], imp)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := Fig10TupleSpace(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Claim: speedup grows with the tuple count (more parallelism).
	for _, sch := range []string{"CHA-TLB", "Device-direct", "Core-integrated"} {
		s5 := find(t, td, 2, "5", sch)
		s15 := find(t, td, 2, "15", sch)
		if s15 <= s5 {
			t.Errorf("%s: speedup at 15 tuples (%.2f) should exceed 5 tuples (%.2f)", sch, s15, s5)
		}
	}
}

func TestFig12Band(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := Fig12DynamicPower(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Claim: QEI reduces per-query dynamic energy substantially; the
	// Core-integrated scheme is the most efficient placement.
	for _, wl := range []string{"DPDK", "JVM", "RocksDB", "Snort", "FLANN"} {
		core := find(t, td, 2, wl, "Core-integrated")
		if core >= 60 {
			t.Errorf("%s: Core-integrated energy %.1f%% of software — want a large cut", wl, core)
		}
	}
}

func TestTailLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := TailLatency(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Claim: overload (interarrival 20) inflates p99 for Core-integrated.
	relaxed := find(t, td, 5, "Core-integrated", "2000")
	slammed := find(t, td, 5, "Core-integrated", "20")
	if slammed <= relaxed {
		t.Errorf("p99 under overload (%.0f) should exceed relaxed p99 (%.0f)", slammed, relaxed)
	}
	// Claim: Device-indirect unloaded median exceeds Core-integrated's.
	devP50 := find(t, td, 3, "Device-indirect", "2000")
	coreP50 := find(t, td, 3, "Core-integrated", "2000")
	if devP50 <= coreP50 {
		t.Errorf("device median (%.0f) should exceed core-integrated (%.0f)", devP50, coreP50)
	}
}

func TestNoCUtilizationReported(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	td, err := NoCUtilization(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Rows) != 2 {
		t.Fatalf("rows = %d", len(td.Rows))
	}
}
