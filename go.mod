module qei

go 1.22
