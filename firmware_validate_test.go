package qei_test

// Black-box tests for the firmware admission pass: ValidateFirmware and
// RegisterFirmware must reject pathological programs with
// ErrFirmwareInvalid and accept the shipped LPM example. External test
// package so it can import the example firmware, which itself imports
// qei.

import (
	"errors"
	"fmt"
	"testing"

	"qei"
	"qei/examples/lpm_router/lpmfw"
)

// fakeFW is a configurable firmware for probing the admission pass.
type fakeFW struct {
	code   uint8
	states int
	step   func(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest
}

func (f fakeFW) TypeCode() uint8 { return f.code }
func (f fakeFW) Name() string    { return fmt.Sprintf("fake-%d", f.code) }
func (f fakeFW) NumStates() int  { return f.states }
func (f fakeFW) Step(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
	return f.step(q, s)
}

// finishImmediately is a well-behaved Step: one transition to Done.
func finishImmediately(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
	return qei.FirmwareFinish(false, 0)
}

func TestValidateFirmwareAcceptsLPMExample(t *testing.T) {
	if err := qei.ValidateFirmware(lpmfw.Firmware{}); err != nil {
		t.Fatalf("ValidateFirmware rejected the shipped LPM firmware: %v", err)
	}
}

func TestValidateFirmwareRejectsPathological(t *testing.T) {
	cases := []struct {
		name string
		fw   qei.Firmware
	}{
		{"too many states", fakeFW{code: 90, states: 300, step: finishImmediately}},
		{"zero states", fakeFW{code: 91, states: 0, step: finishImmediately}},
		{"reserved type code", fakeFW{code: 0, states: 1, step: finishImmediately}},
		{"never reaches done", fakeFW{code: 92, states: 2,
			step: func(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
				// Spins between Start and state 1 forever; the probe's
				// transition budget must cut it off.
				return qei.FirmwareContinue(1, false)
			}}},
		{"exception only", fakeFW{code: 93, states: 1,
			step: func(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
				return qei.FirmwareFail(errors.New("always fails"))
			}}},
		{"out of range op bytes", fakeFW{code: 94, states: 1,
			step: func(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
				return qei.FirmwareFinish(false, 0, qei.FirmwareMemRead(0, 1<<30))
			}}},
		{"panicking step", fakeFW{code: 95, states: 1,
			step: func(q *qei.FirmwareQuery, s qei.FirmwareState) qei.FirmwareRequest {
				panic("firmware bug")
			}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := qei.ValidateFirmware(tc.fw)
			if err == nil {
				t.Fatalf("ValidateFirmware accepted pathological firmware (%s)", tc.name)
			}
			if !errors.Is(err, qei.ErrFirmwareInvalid) {
				t.Fatalf("error does not wrap ErrFirmwareInvalid: %v", err)
			}
		})
	}
}

func TestRegisterFirmwareRejectsBuiltinCollision(t *testing.T) {
	sys := qei.NewSystem(qei.CoreIntegrated)
	// Type code 3 belongs to a built-in structure; firmware must not
	// silently shadow it even if otherwise well formed.
	err := sys.RegisterFirmware(fakeFW{code: 3, states: 1, step: finishImmediately})
	if err == nil {
		t.Fatal("RegisterFirmware accepted a type-code collision with a built-in")
	}
	if !errors.Is(err, qei.ErrFirmwareInvalid) {
		t.Fatalf("collision error does not wrap ErrFirmwareInvalid: %v", err)
	}
	// A duplicate registration of the same custom code must also fail.
	if err := sys.RegisterFirmware(fakeFW{code: 96, states: 1, step: finishImmediately}); err != nil {
		t.Fatalf("first registration of code 96 failed: %v", err)
	}
	err = sys.RegisterFirmware(fakeFW{code: 96, states: 1, step: finishImmediately})
	if !errors.Is(err, qei.ErrFirmwareInvalid) {
		t.Fatalf("duplicate registration error does not wrap ErrFirmwareInvalid: %v", err)
	}
}
