package qei

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qei/internal/serve"
)

// chaosServingConfig is the serving chaos soak: injected accelerator
// faults, a mixed read-write stream (so the epoch GC is armed), a tight
// SLO, and the full resilience layer.
func chaosServingConfig() ServingConfig {
	cfg := DefaultServingConfig()
	cfg.Tenants = 3
	cfg.Requests = 240
	cfg.KeysPerTenant = 64
	cfg.WriteFraction = 0.15
	cfg.DeleteFraction = 0.3
	cfg.SLO = 3000
	cfg.Resilient = true
	spec := MustParseFaultSpec("11:spurious=0.3,flip=0.03,shootdown=0.05")
	cfg.Faults = &spec
	return cfg
}

// TestServingChaosSoak is the headline robustness soak: faults x writes
// x tight SLO through the resilient serving path must complete without
// aborting, degrade at least one request to the software safety net,
// and keep the consistency contract — zero read-after-retire
// violations.
func TestServingChaosSoak(t *testing.T) {
	cfg := chaosServingConfig()
	rep, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected == 0 {
		t.Fatal("chaos schedule injected nothing")
	}
	if rep.Total.FailedOver == 0 {
		t.Fatal("no request degraded to the software path under chaos")
	}
	if rep.EpochViolations != 0 {
		t.Fatalf("%d read-after-retire violations under chaos", rep.EpochViolations)
	}
	// Degraded, never wrong or lost: every request is accounted for as
	// completed, written, or shed.
	if got := rep.Total.Requests + rep.Total.Writes + rep.Total.Shed; got != uint64(cfg.Requests) {
		t.Fatalf("requests %d + writes %d + shed %d != %d",
			rep.Total.Requests, rep.Total.Writes, rep.Total.Shed, cfg.Requests)
	}
	// Failover absorbs the faults: nothing surfaces in the fault column.
	if rep.Total.Faults != 0 {
		t.Fatalf("%d faults surfaced despite failover", rep.Total.Faults)
	}
	if rep.Breaker == nil {
		t.Fatal("resilient qei run carries no breaker report")
	}
}

// TestServingChaosDeterministicAnyParallel pins that the chaos soak's
// outcome — shed, retries, failovers, breaker state, every percentile —
// is byte-identical at any generation worker count, and that replaying
// its recorded trace under the same fault schedule reproduces it
// exactly.
func TestServingChaosDeterministicAnyParallel(t *testing.T) {
	base := chaosServingConfig()

	var want *serve.Report
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.GenWorkers = workers
		rep, err := RunServing(cfg)
		if err != nil {
			t.Fatalf("GenWorkers=%d: %v", workers, err)
		}
		if want == nil {
			want = rep
			continue
		}
		if !reflect.DeepEqual(want, rep) {
			t.Fatalf("chaos report differs at GenWorkers=%d:\nwant %+v\ngot  %+v", workers, want, rep)
		}
	}

	// Record/replay round trip: same trace + same -faults schedule =
	// identical shed/failover/digest outcomes, byte for byte.
	gen := base.GenConfig()
	reqs, err := serve.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteTrace(&buf, gen, reqs); err != nil {
		t.Fatal(err)
	}
	rgen, rreqs, err := serve.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayServing(base, rgen, rreqs)
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(want)
	rj, _ := json.Marshal(replayed)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("chaos replay differs from live run:\nlive   %s\nreplay %s", lj, rj)
	}
}

// TestServingFaultsWithoutResilience pins the other half of the
// ServingConfig.Faults contract: with the resilience layer off, the
// run still completes — injected faults ride in the per-tenant fault
// counts instead of being absorbed by retry/failover.
func TestServingFaultsWithoutResilience(t *testing.T) {
	cfg := chaosServingConfig()
	cfg.Resilient = false
	rep, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected == 0 {
		t.Fatal("chaos schedule injected nothing")
	}
	if rep.Total.Faults == 0 {
		t.Fatal("no injected fault surfaced in the report")
	}
	if rep.Total.FailedOver != 0 || rep.Total.Retries != 0 || rep.Total.Shed != 0 {
		t.Fatalf("resilience counters moved while off: %+v", rep.Total)
	}
	if rep.Breaker != nil {
		t.Fatalf("breaker report present while off: %+v", rep.Breaker)
	}
	if rep.EpochViolations != 0 {
		t.Fatalf("%d read-after-retire violations", rep.EpochViolations)
	}
}

// TestServingResilientQuietMatchesBaseline pins opt-in invariance end
// to end: on a clean machine with a generous deadline, the resilient
// run's per-tenant rows equal the non-resilient run's exactly, and the
// non-resilient report's JSON stays free of resilience fields (the
// byte-compatibility contract for existing consumers).
func TestServingResilientQuietMatchesBaseline(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Requests = 120
	cfg.Tenants = 3

	plain, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resilient = true
	rcfg.Deadline = 1 << 50
	resilient, err := RunServing(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Tenants, resilient.Tenants) || !reflect.DeepEqual(plain.Total, resilient.Total) {
		t.Fatalf("quiet resilient run changed tenant accounting:\nplain     %+v\nresilient %+v", plain.Total, resilient.Total)
	}
	j, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"shed", "retries", "failed_over", "breaker", "faults_injected", "epoch_violations"} {
		if strings.Contains(string(j), `"`+field+`"`) {
			t.Fatalf("non-resilient report JSON mentions %q", field)
		}
	}
}

// TestServingAdmissionStallExported pins the qei-taxonomy alias: the
// serving layer's stall sentinel is reachable (and errors.Is-matchable)
// from the public package.
func TestServingAdmissionStallExported(t *testing.T) {
	if ErrAdmissionStall == nil {
		t.Fatal("ErrAdmissionStall not exported")
	}
	if ErrAdmissionStall != serve.ErrAdmissionStall {
		t.Fatal("qei.ErrAdmissionStall is not the serve sentinel")
	}
}

// TestServingTimeline pins the serving timeline export: a resilient
// chaos run with Timeline set writes a Chrome trace document carrying
// the serving track's failover spans.
func TestServingTimeline(t *testing.T) {
	cfg := chaosServingConfig()
	cfg.Requests = 120
	cfg.Timeline = filepath.Join(t.TempDir(), "timeline.json")
	if _, err := RunServing(cfg); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(cfg.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"traceEvents", `"failover"`} {
		if !bytes.Contains(doc, []byte(needle)) {
			t.Fatalf("timeline missing %s", needle)
		}
	}
}
