package qei

import (
	"errors"

	"qei/internal/cfa"
	"qei/internal/dstruct"
	"qei/internal/hwdesc"
	"qei/internal/qei"
	"qei/internal/serve"
)

// Sentinel errors of the query lifecycle. Callers branch with
// errors.Is; every error carrying per-query context wraps one of these.
var (
	// ErrQSTFull is returned by QueryAsync when every QST entry is
	// occupied: drain a completion with Wait (or use QueryBatch, which
	// handles the bound internally) and reissue.
	ErrQSTFull = qei.ErrQSTFull
	// ErrAborted is returned by Wait and Poll for a query flushed by
	// Interrupt before completing; reissue it (Sec. IV-D).
	ErrAborted = qei.ErrAborted
	// ErrResultPending is returned by Wait and Poll while the completion
	// flag has not been written yet — the List-2 poll loop's "not done"
	// arm.
	ErrResultPending = errors.New("qei: async result not yet written")
	// ErrUnknownHandle is returned by Wait and Poll for a handle this
	// system never issued.
	ErrUnknownHandle = errors.New("qei: unknown async handle")
	// ErrQueryTimeout is carried by Result.Err when the per-query cycle
	// budget watchdog (WithQueryCycleBudget) killed a stuck or looping
	// CFA walk. Treat the structure as suspect; with WithFallback the
	// query re-executes on the software path instead.
	ErrQueryTimeout = qei.ErrQueryTimeout
	// ErrStructCorrupt is carried by Result.Err when the accelerator
	// found the guest structure inconsistent — a pointer into unmapped
	// memory, a pointer cycle, or bytes the firmware could not interpret
	// (Sec. IV-D surfaces these architecturally rather than wandering).
	ErrStructCorrupt = qei.ErrStructCorrupt
	// ErrUnsupportedOp is returned by MutableTable.Insert and Delete for
	// a structure kind whose software routines do not implement the
	// operation (e.g. Delete on a singly linked list keeps the sentinel
	// while hash tables and tries have no mutators at all).
	ErrUnsupportedOp = errors.New("qei: operation not supported by this structure kind")
	// ErrTableFull is returned by MutableTable.Insert when a cuckoo
	// insertion keeps failing even after the online rehash doubled the
	// bucket array (pathological key sets); it wraps
	// dstruct.ErrTableFull so internal callers agree.
	ErrTableFull = dstruct.ErrTableFull
	// ErrAdmissionStall is returned (wrapped) by RunServing and
	// ReplayServing when the serving admission controller wedges: a
	// tenant is over its in-flight bound — or the backend reports
	// itself full — while nothing is in flight to drain. That is never
	// a load condition (load waits, or sheds under a resilience
	// deadline); it means the backend's capacity accounting is broken.
	ErrAdmissionStall = serve.ErrAdmissionStall
	// ErrUnknownKind is returned by the generic Build for a StructKind
	// it has no builder for (KindInvalid, KindCustom, undefined values),
	// and by QuerySoftware for a kind without a software walker.
	ErrUnknownKind = errors.New("qei: no builder for structure kind")
	// ErrFirmwareInvalid is returned by RegisterFirmware and
	// ValidateFirmware for firmware that fails admission: reserved or
	// colliding type codes, state counts outside 1..254, out-of-range
	// micro-ops, or a program the validation probe could not drive to
	// FirmwareDone. It also appears as Result.Err when registered
	// firmware misbehaves at run time (panicking handler, oversized op).
	ErrFirmwareInvalid = cfa.ErrInvalidProgram
	// ErrBadConfig is returned by LoadMachineSpec, RunDSE, and the CLIs'
	// -machine flag for a machine description that does not validate:
	// unknown preset, unreadable or malformed JSON, unknown fields, or
	// inconsistent geometry (more cores than mesh stops, a cache size not
	// divisible by its ways, an out-of-range memory stop). The message
	// names the offending field.
	ErrBadConfig = hwdesc.ErrBadConfig
)
