package qei

import (
	"errors"

	"qei/internal/qei"
)

// Sentinel errors of the async query lifecycle. Callers branch with
// errors.Is; every error carrying per-query context wraps one of these.
var (
	// ErrQSTFull is returned by QueryAsync when every QST entry is
	// occupied: drain a completion with Wait (or use QueryBatch, which
	// handles the bound internally) and reissue.
	ErrQSTFull = qei.ErrQSTFull
	// ErrAborted is returned by Wait and Poll for a query flushed by
	// Interrupt before completing; reissue it (Sec. IV-D).
	ErrAborted = qei.ErrAborted
	// ErrResultPending is returned by Wait and Poll while the completion
	// flag has not been written yet — the List-2 poll loop's "not done"
	// arm.
	ErrResultPending = errors.New("qei: async result not yet written")
	// ErrUnknownHandle is returned by Wait and Poll for a handle this
	// system never issued.
	ErrUnknownHandle = errors.New("qei: unknown async handle")
)
