package qei

import (
	"context"
	"errors"
	"testing"
)

func TestRunDSETinySweep(t *testing.T) {
	res, err := RunDSE(context.Background(), DSEConfig{
		Axes: "qst=8,32;cores=24",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for _, p := range res.Points {
		if p.SpeedupX <= 1 {
			t.Errorf("%s: speedup %.2f, want > 1", p.Desc.Name, p.SpeedupX)
		}
	}
}

func TestRunDSEBadInputs(t *testing.T) {
	ctx := context.Background()
	if _, err := RunDSE(ctx, DSEConfig{Axes: "bogus=1"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad axes: error = %v, want ErrBadConfig", err)
	}
	if _, err := RunDSE(ctx, DSEConfig{Base: "not-a-preset"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad base: error = %v, want ErrBadConfig", err)
	}
	if _, err := RunDSE(ctx, DSEConfig{Workload: "quake", Axes: "qst=8"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad workload: error = %v, want ErrBadConfig", err)
	}
}

func TestDSEFrontierExperiment(t *testing.T) {
	tab, err := DSEFrontier(Small, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	// 8 design points plus the totals row.
	if len(tab.Rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(tab.Rows))
	}
	frontier := 0
	for _, r := range tab.Rows[:8] {
		if len(r) != len(tab.Headers) {
			t.Fatalf("row width %d != header width %d", len(r), len(tab.Headers))
		}
		if r[len(r)-1] == "frontier" {
			frontier++
		}
	}
	if frontier == 0 {
		t.Error("no frontier points in the experiment table")
	}
}

func TestDSERegisteredBeforeBench(t *testing.T) {
	exps := Experiments()
	names := make(map[string]int)
	for i, e := range exps {
		names[e.Name] = i
	}
	di, ok := names["dse"]
	if !ok {
		t.Fatal("dse experiment not registered")
	}
	if bi := names["bench"]; bi != len(exps)-1 || di >= bi {
		t.Errorf("ordering wrong: dse at %d, bench at %d of %d (bench must stay last)",
			di, bi, len(exps))
	}
}
