package qei

import (
	"bytes"
	"errors"
	"testing"
)

func TestSoftwareUpdateHardwareQueryCoexistence(t *testing.T) {
	// The paper's usage model: updates in software, queries on QEI, both
	// over the same coherent memory. An accelerated query issued right
	// after an insert must observe it; after a delete, miss.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(200, 16, 20)
	tb, err := sys.BuildMutableCuckoo(keys[:100], vals[:100])
	if err != nil {
		t.Fatal(err)
	}

	// Insert new keys in software, query each via the accelerator.
	for i := 100; i < 150; i++ {
		if err := tb.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("accelerator did not observe software insert %d: %+v", i, res)
		}
	}
	// Delete and verify the accelerator observes the removal.
	for i := 0; i < 50; i++ {
		ok, err := tb.Delete(keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		res, err := tb.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("accelerator still finds deleted key %d", i)
		}
	}
}

func TestMutableSkipListAndBST(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(120, 32, 21)

	sl, err := sys.BuildMutableSkipList(keys[:60], vals[:60])
	if err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 90; i++ {
		if err := sl.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 90; i++ {
		res, err := sl.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("skiplist key %d: %+v", i, res)
		}
	}
	// Deletion is software too; the accelerator observes the unlink.
	for i := 0; i < 10; i++ {
		ok, err := sl.Delete(keys[i])
		if err != nil || !ok {
			t.Fatalf("skiplist delete %d: %v %v", i, ok, err)
		}
		if res, _ := sl.Query(keys[i]); res.Found {
			t.Fatalf("deleted skiplist key %d still visible", i)
		}
	}

	bkeys, bvals := testKeys(80, 8, 22)
	bst, err := sys.BuildMutableBST(bkeys[:40], bvals[:40], 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 80; i++ {
		if err := bst.Insert(bkeys[i], bvals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		res, err := bst.Query(bkeys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != bvals[i] {
			t.Fatalf("bst key %d: %+v", i, res)
		}
	}
	for i := 0; i < 10; i++ {
		ok, err := bst.Delete(bkeys[i])
		if err != nil || !ok {
			t.Fatalf("bst delete %d: %v %v", i, ok, err)
		}
		if res, _ := bst.Query(bkeys[i]); res.Found {
			t.Fatalf("deleted bst key %d still visible", i)
		}
	}
}

func TestMutableLinkedList(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(30, 16, 23)
	ll, err := sys.BuildMutableLinkedList(keys[:20], vals[:20])
	if err != nil {
		t.Fatal(err)
	}
	// Prepend: the accelerator must observe the republished header root.
	for i := 20; i < 30; i++ {
		if err := ll.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ll.Query(keys[29])
	if err != nil || !res.Found || res.Value != vals[29] {
		t.Fatalf("prepended key not visible to accelerator: %+v %v", res, err)
	}
	ok, err := ll.Delete(keys[25])
	if err != nil || !ok {
		t.Fatalf("list delete: %v %v", ok, err)
	}
	res, _ = ll.Query(keys[25])
	if res.Found {
		t.Fatal("deleted list key still visible")
	}
}

func TestMutableKeyValidation(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(10, 16, 24)
	tb, err := sys.BuildMutableCuckoo(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(bytes.Repeat([]byte{1}, 7), 1); err == nil {
		t.Fatal("wrong-length key accepted")
	}
}

func TestMutableBTree(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(120, 16, 26)
	tb, err := sys.BuildMutableBTree(keys[:40], vals[:40])
	if err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 120; i++ {
		if err := tb.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i++ {
		res, err := tb.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("btree key %d: %+v", i, res)
		}
	}
	for i := 0; i < 100; i++ {
		ok, err := tb.Delete(keys[i])
		if err != nil || !ok {
			t.Fatalf("btree delete %d: %v %v", i, ok, err)
		}
		if res, _ := tb.Query(keys[i]); res.Found {
			t.Fatalf("deleted btree key %d still visible", i)
		}
	}
	st := tb.MutStats()
	if st.Splits == 0 || st.Merges == 0 {
		t.Fatalf("80 inserts + 100 deletes exercised no rebalances: %+v", st)
	}
	if st.RetiredNodes == 0 {
		t.Fatal("merges retired no nodes")
	}
}

func TestBuildMutableGenericAndUnsupported(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(50, 16, 27)
	for _, kind := range []StructKind{KindCuckoo, KindSkipList, KindBST, KindLinkedList, KindBTree} {
		tb, err := sys.BuildMutable(kind, keys, vals)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res, err := tb.Query(keys[0]); err != nil || !res.Found {
			t.Fatalf("%s: built table not queryable: %+v %v", kind, res, err)
		}
	}
	if _, err := sys.BuildMutable(KindHashTable, keys, vals); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("hash table mutable build: %v, want ErrUnsupportedOp", err)
	}
	if _, err := sys.BuildMutable(KindTrie, keys, vals); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("trie mutable build: %v, want ErrUnsupportedOp", err)
	}
}

func TestCuckooOnlineRehash(t *testing.T) {
	// Growing a cuckoo table past its load ceiling must trigger an
	// online rehash that retires the old bucket array and keeps every
	// key reachable by the accelerator.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(400, 16, 28)
	tb, err := sys.BuildMutableCuckoo(keys[:50], vals[:50])
	if err != nil {
		t.Fatal(err)
	}
	// The build allocates one bucket per key (512 slots here), so lower
	// the ceiling to force the online rehash at test scale.
	tb.SetMaxLoadFactor(0.5)
	for i := 50; i < 400; i++ {
		if err := tb.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.MutStats()
	if st.Rehashes == 0 {
		t.Fatal("8x growth caused no rehash")
	}
	if st.RetiredNodes == 0 {
		t.Fatal("rehash retired no bucket array")
	}
	for i := 0; i < 400; i += 13 {
		res, err := tb.Query(keys[i])
		if err != nil || !res.Found || res.Value != vals[i] {
			t.Fatalf("post-rehash key %d: %+v %v", i, res, err)
		}
	}
	es := sys.EpochStats()
	if es.Retired == 0 || es.Epoch == 0 {
		t.Fatalf("epoch GC saw no activity: %+v", es)
	}
}

func TestAsyncPinsHoldReclamation(t *testing.T) {
	// An async query pins its admission epoch: memory retired while it
	// is in flight must not be reclaimed until the query is drained.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(100, 32, 29)
	tb, err := sys.BuildMutableSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.QueryAsync(tb.Table, keys[50])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if ok, err := tb.Delete(keys[i]); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	es := sys.EpochStats()
	if es.Retired != 20 {
		t.Fatalf("retired %d nodes, want 20", es.Retired)
	}
	if es.Reclaimed != 0 {
		t.Fatalf("reclaimed %d extents under an in-flight query", es.Reclaimed)
	}
	if res, err := sys.Wait(h); err != nil || !res.Found || res.Value != vals[50] {
		t.Fatalf("pinned query result: %+v %v", res, err)
	}
	// The pin is gone; the next mutation's epoch bump frees the limbo.
	if ok, err := tb.Delete(keys[20]); err != nil || !ok {
		t.Fatal("post-wait delete failed")
	}
	es = sys.EpochStats()
	if es.Reclaimed == 0 {
		t.Fatalf("limbo not reclaimed after drain: %+v", es)
	}
	if es.PinsOutstanding != 0 {
		t.Fatalf("%d pins leaked", es.PinsOutstanding)
	}
	if v := sys.EpochStats().Violations; v != 0 {
		t.Fatalf("%d read-after-retire violations", v)
	}
}

func TestInterruptFlushAPI(t *testing.T) {
	// Sec. IV-D: an interrupt flushes in-flight non-blocking queries;
	// software observes the abort code and reissues.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(100, 32, 25)
	tb, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Issue a burst of async queries (long-latency pointer chases), then
	// interrupt before they can possibly complete.
	handles := make([]AsyncHandle, 8)
	for i := range handles {
		h, err := sys.QueryAsync(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	lat := sys.Interrupt()
	if lat == 0 {
		t.Fatal("flush with pending queries should cost cycles")
	}
	aborted := 0
	for _, h := range handles {
		if sys.Aborted(h) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no queries aborted by the interrupt")
	}
	// Reissue the aborted work; it must succeed now.
	for i := range handles {
		res, err := sys.Query(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("reissued query %d failed: %+v", i, res)
		}
	}
	// A second interrupt with nothing in flight is free.
	if lat := sys.Interrupt(); lat != 0 {
		t.Fatalf("idle flush cost %d cycles", lat)
	}
}
