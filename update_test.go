package qei

import (
	"bytes"
	"testing"
)

func TestSoftwareUpdateHardwareQueryCoexistence(t *testing.T) {
	// The paper's usage model: updates in software, queries on QEI, both
	// over the same coherent memory. An accelerated query issued right
	// after an insert must observe it; after a delete, miss.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(200, 16, 20)
	tb, err := sys.BuildMutableCuckoo(keys[:100], vals[:100])
	if err != nil {
		t.Fatal(err)
	}

	// Insert new keys in software, query each via the accelerator.
	for i := 100; i < 150; i++ {
		if err := tb.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("accelerator did not observe software insert %d: %+v", i, res)
		}
	}
	// Delete and verify the accelerator observes the removal.
	for i := 0; i < 50; i++ {
		ok, err := tb.Delete(keys[i])
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		res, err := tb.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("accelerator still finds deleted key %d", i)
		}
	}
}

func TestMutableSkipListAndBST(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(120, 32, 21)

	sl, err := sys.BuildMutableSkipList(keys[:60], vals[:60])
	if err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 90; i++ {
		if err := sl.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 90; i++ {
		res, err := sl.Query(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("skiplist key %d: %+v", i, res)
		}
	}
	if _, err := sl.Delete(keys[0]); err == nil {
		t.Fatal("skiplist delete should be unsupported")
	}

	bkeys, bvals := testKeys(80, 8, 22)
	bst, err := sys.BuildMutableBST(bkeys[:40], bvals[:40], 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 80; i++ {
		if err := bst.Insert(bkeys[i], bvals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		res, err := bst.Query(bkeys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != bvals[i] {
			t.Fatalf("bst key %d: %+v", i, res)
		}
	}
}

func TestMutableLinkedList(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(30, 16, 23)
	ll, err := sys.BuildMutableLinkedList(keys[:20], vals[:20])
	if err != nil {
		t.Fatal(err)
	}
	// Prepend: the accelerator must observe the republished header root.
	for i := 20; i < 30; i++ {
		if err := ll.Insert(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ll.Query(keys[29])
	if err != nil || !res.Found || res.Value != vals[29] {
		t.Fatalf("prepended key not visible to accelerator: %+v %v", res, err)
	}
	ok, err := ll.Delete(keys[25])
	if err != nil || !ok {
		t.Fatalf("list delete: %v %v", ok, err)
	}
	res, _ = ll.Query(keys[25])
	if res.Found {
		t.Fatal("deleted list key still visible")
	}
}

func TestMutableKeyValidation(t *testing.T) {
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(10, 16, 24)
	tb, err := sys.BuildMutableCuckoo(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(bytes.Repeat([]byte{1}, 7), 1); err == nil {
		t.Fatal("wrong-length key accepted")
	}
}

func TestInterruptFlushAPI(t *testing.T) {
	// Sec. IV-D: an interrupt flushes in-flight non-blocking queries;
	// software observes the abort code and reissues.
	sys := NewSystem(CoreIntegrated)
	keys, vals := testKeys(100, 32, 25)
	tb, err := sys.BuildSkipList(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Issue a burst of async queries (long-latency pointer chases), then
	// interrupt before they can possibly complete.
	handles := make([]AsyncHandle, 8)
	for i := range handles {
		h, err := sys.QueryAsync(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	lat := sys.Interrupt()
	if lat == 0 {
		t.Fatal("flush with pending queries should cost cycles")
	}
	aborted := 0
	for _, h := range handles {
		if sys.Aborted(h) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no queries aborted by the interrupt")
	}
	// Reissue the aborted work; it must succeed now.
	for i := range handles {
		res, err := sys.Query(tb, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != vals[i] {
			t.Fatalf("reissued query %d failed: %+v", i, res)
		}
	}
	// A second interrupt with nothing in flight is free.
	if lat := sys.Interrupt(); lat != 0 {
		t.Fatalf("idle flush cost %d cycles", lat)
	}
}
