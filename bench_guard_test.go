package qei

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchGuard is the CI benchmark-regression gate (the ci.sh
// bench-guard stage runs it with QEI_BENCH_GUARD=1): it benchmarks the
// end-to-end runners and compares against the committed BENCH_guard.json
// envelope. Allocations are the hard gate — allocs/op is
// machine-independent, so exceeding the envelope by the strict factor
// means a real regression (a builder no longer pooled, a map back on the
// hot path). Wall time gets a generous factor since CI machines vary.
//
// Regenerate the envelope after an intentional performance change:
//
//	go test -run '^$' -bench BenchmarkEndToEnd -benchtime 3x .
//
// then round the measured allocs/op and ns/op up ~10% into
// BENCH_guard.json.
func TestBenchGuard(t *testing.T) {
	if os.Getenv("QEI_BENCH_GUARD") == "" {
		t.Skip("set QEI_BENCH_GUARD=1 to run the benchmark regression guard (ci.sh bench-guard stage does)")
	}

	data, err := os.ReadFile("BENCH_guard.json")
	if err != nil {
		t.Fatalf("read envelope: %v", err)
	}
	var envelope map[string]struct {
		AllocsPerOp int64 `json:"allocs_per_op"`
		NsPerOp     int64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		t.Fatalf("parse envelope: %v", err)
	}

	const (
		allocsFactor = 2 // hard gate: >2x committed allocs/op fails
		nsFactor     = 5 // soft gate: absorbs CI machine variation
	)
	benches := map[string]func(*testing.B){
		"BenchmarkEndToEndBaseline": BenchmarkEndToEndBaseline,
		"BenchmarkEndToEndQEI":      BenchmarkEndToEndQEI,
		"BenchmarkEndToEndBench":    BenchmarkEndToEndBench,
		"BenchmarkQueryBatch":       BenchmarkQueryBatch,
	}
	for name, fn := range benches {
		limit, ok := envelope[name]
		if !ok {
			t.Errorf("%s: no envelope entry in BENCH_guard.json", name)
			continue
		}
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Errorf("%s: benchmark did not run", name)
			continue
		}
		allocs := r.AllocsPerOp()
		ns := r.NsPerOp()
		t.Logf("%s: %d ns/op, %d allocs/op (envelope %d ns/op, %d allocs/op)",
			name, ns, allocs, limit.NsPerOp, limit.AllocsPerOp)
		if allocs > allocsFactor*limit.AllocsPerOp {
			t.Errorf("%s: %d allocs/op exceeds %dx envelope (%d): allocation regression on the hot path",
				name, allocs, allocsFactor, limit.AllocsPerOp)
		}
		if ns > nsFactor*limit.NsPerOp {
			t.Errorf("%s: %d ns/op exceeds %dx envelope (%d): wall-clock regression",
				name, ns, nsFactor, limit.NsPerOp)
		}
	}
}
